module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Engine = Bisram_bist.Engine

type t = {
  org : Org.t;
  bound : int;  (* max distinct cells any in-budget cover can span *)
  seen : (int, unit) Hashtbl.t;  (* key = row * cols + col *)
  mutable overflowed : bool;
}

let create org =
  let bound =
    (org.Org.spares * Org.cols org) + (org.Org.spare_cols * Org.rows org)
  in
  { org; bound; seen = Hashtbl.create 64; overflowed = false }

let add_cell t ~row ~col =
  if row < 0 || row >= Org.rows t.org || col < 0 || col >= Org.cols t.org
  then invalid_arg "Fault_map.add_cell: cell outside the regular grid";
  if not t.overflowed then begin
    let key = (row * Org.cols t.org) + col in
    if not (Hashtbl.mem t.seen key) then
      if Hashtbl.length t.seen >= t.bound then t.overflowed <- true
      else Hashtbl.add t.seen key ()
  end

let failure_cells ~fast org (f : Engine.failure) =
  let row = Org.row_of_addr org f.Engine.addr
  and col = Org.col_of_addr org f.Engine.addr in
  if fast then begin
    (* Comparator analog: one packed XOR, then one step per set bit. *)
    let x = ref (Word.to_int f.Engine.expected lxor Word.to_int f.Engine.got) in
    let acc = ref [] in
    while !x <> 0 do
      let low = !x land - !x in
      let bit =
        let rec idx b n = if b = 1 then n else idx (b lsr 1) (n + 1) in
        idx low 0
      in
      acc := (row, Org.cell_col org ~col ~bit) :: !acc;
      x := !x lxor low
    done;
    List.rev !acc
  end
  else begin
    let acc = ref [] in
    for bit = Word.width f.Engine.expected - 1 downto 0 do
      if Word.get f.Engine.expected bit <> Word.get f.Engine.got bit then
        acc := (row, Org.cell_col org ~col ~bit) :: !acc
    done;
    !acc
  end

let add_failures ~fast t failures =
  List.iter
    (fun f ->
      List.iter
        (fun (row, col) -> add_cell t ~row ~col)
        (failure_cells ~fast t.org f))
    failures

let overflowed t = t.overflowed
let count t = Hashtbl.length t.seen

let cells t =
  let cols = Org.cols t.org in
  Hashtbl.fold (fun key () acc -> (key / cols, key mod cols) :: acc) t.seen []
  |> List.sort compare
