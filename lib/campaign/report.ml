type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf j;
  Buffer.contents buf

let rec pp_indented buf ~indent = function
  | Obj fields when fields <> [] ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  \"";
          add_escaped buf k;
          Buffer.add_string buf "\": ";
          pp_indented buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | List items when items <> [] ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          pp_indented buf ~indent:(indent + 2) x)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | j -> emit buf j

let to_pretty_string j =
  let buf = Buffer.create 4096 in
  pp_indented buf ~indent:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf
