(* The deterministic JSON representation moved to [Bisram_obs.Json] so
   the telemetry exporters can share it; this alias keeps the campaign
   API (and its byte-level output) unchanged. *)
include Bisram_obs.Json

(* Confidence intervals render as a two-field object everywhere a
   report carries one, so the estimator, sweep and bench sections stay
   mutually greppable. *)
let interval_json ~lo ~hi = Obj [ ("lo", Float lo); ("hi", Float hi) ]
