(* The deterministic JSON representation moved to [Bisram_obs.Json] so
   the telemetry exporters can share it; this alias keeps the campaign
   API (and its byte-level output) unchanged. *)
include Bisram_obs.Json
