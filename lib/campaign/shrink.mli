(** Greedy delta debugging: shrink a failing input to a 1-minimal
    reproducer.

    Used by the campaign to reduce a failing fault list to a minimal
    set that still triggers the same escape or oracle divergence. *)

(** [minimize ~keep items] returns a minimal sublist of [items]
    (original order preserved) on which [keep] still holds: no single
    remaining element can be dropped without [keep] turning false.
    [keep items] itself must be [true]; if it is not, [items] is
    returned unchanged.  [keep] is assumed deterministic. *)
val minimize : keep:('a list -> bool) -> 'a list -> 'a list
