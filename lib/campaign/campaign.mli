(** Monte Carlo test-and-repair campaigns: the adversarial stress layer
    over the whole BIST/BISR flow.

    Each trial draws a random fault set (uniform count, Poisson or
    clustered), runs the microprogrammed controller
    ({!Bisram_bisr.Repair.run}) and the functional reference engine
    ({!Bisram_bisr.Repair.run_reference}) as a differential oracle, runs
    the iterated 2k-pass flow for the repair-effort histogram, and then
    sweeps the post-repair array independently ({!Sweep}) for silent
    escapes — cells still faulty at a logical address although the flow
    said [Passed_clean] or [Repaired].

    Reproducibility discipline: every trial has its own integer seed
    derived from the campaign seed; any failing trial can be re-run in
    isolation with {!replay}.  Failing fault sets are shrunk by greedy
    delta debugging ({!Shrink}) to minimal reproducers before they are
    reported.  The whole campaign is deterministic: the same config
    yields a byte-identical JSON report, at any [jobs] count — trials
    are fanned out over domains but merged in trial-index order.

    Telemetry: when {!Bisram_obs.Obs.set_enabled} is on, every trial
    records phase spans (["trial"] > ["inject"] / ["march"] /
    ["oracle"] / ["repair"] / ["escape-sweep"], plus ["shrink"] per
    failure), deterministic counters and histograms
    ([campaign.trials], [campaign.escapes], [model.fast_reads] …,
    [campaign.cycles]) and per-worker pool utilization
    ([pool.workerN.busy_ns] …).  Telemetry is strictly write-only side
    channel state: nothing it records feeds {!to_json}, so reports are
    byte-identical with telemetry on or off. *)

type mode =
  | Uniform of int  (** exactly n faults per trial *)
  | Poisson of float  (** Poisson-distributed count with the given mean *)
  | Clustered of { mean : float; alpha : float }
      (** negative-binomial (clustered) count *)

(** Per-trial repair architecture.  [Row_tlb] is the paper's row-only
    TLB flow (the default, and the only flow with a microprogrammed
    controller); [Bira s] runs the 2D spare-row + spare-column flow of
    {!Bisram_bira.Bira} with allocator [s], holding the packed-word
    comparator analog against the bit-by-bit reference as the
    differential oracle. *)
type repair = Row_tlb | Bira of Bisram_bira.Bira.strategy

val repair_name : repair -> string
(** ["row-tlb"], ["bira-greedy"], ["bira-essential"], ["bira-bnb"] —
    the CLI and report spellings. *)

val repair_of_name : string -> repair option

type config = {
  org : Bisram_sram.Org.t;
  march : Bisram_bist.March.t;
  mix : Bisram_faults.Injection.mix;
  mode : mode;
  proposal : Bisram_faults.Proposal.t option;
      (** biased trial sampling for rare-event estimation; [None] =
          nominal draws, weight 1 everywhere (identity proposals are
          normalized to [None] by {!make_config}) *)
  repair : repair;
  trials : int;
  seed : int;
  max_seconds : float option;  (** wall-clock budget; [None] = unbounded *)
  shrink : bool;  (** delta-debug failing fault sets *)
  max_rounds : int;  (** iterated-flow bound *)
}

(** The campaign fault-count model in the proposal layer's vocabulary
    (a pure rename of {!mode}). *)
val count_model_of_mode : mode -> Bisram_faults.Proposal.count_model

(** Defaults: 64x8 words, bpc 4, 4 spares, IFA-9, default mix, 2 faults
    per trial, 100 trials, seed 42, no proposal, no time budget,
    shrinking on, 8 rounds.  @raise Invalid_argument on negative
    counts, an invalid mix, or a proposal that fails
    {!Bisram_faults.Proposal.validate} against the mode and mix. *)
val make_config :
  ?org:Bisram_sram.Org.t ->
  ?march:Bisram_bist.March.t ->
  ?mix:Bisram_faults.Injection.mix ->
  ?mode:mode ->
  ?proposal:Bisram_faults.Proposal.t ->
  ?repair:repair ->
  ?trials:int ->
  ?seed:int ->
  ?max_seconds:float ->
  ?shrink:bool ->
  ?max_rounds:int ->
  unit ->
  config

(** The derived per-trial seed (pure function of campaign seed and
    trial index — the value printed in reports and fed to [--replay]). *)
val trial_seed : config -> int -> int

(** The importance weight of the trial at a campaign index — the
    likelihood ratio of its fault draw under the nominal versus the
    proposal distribution, recovered by redrawing the faults from the
    derived seed.  [log 1 = 0] / [1.0] when no proposal is armed. *)
val trial_log_weight : config -> index:int -> float

val trial_weight : config -> index:int -> float

(** Widest usable lane batch ({!Bisram_sram.Word.max_width}: one trial
    per bit of a native int). *)
val max_lanes : int

type flow = Two_pass | Iterated

val flow_name : flow -> string

type anomaly =
  | Escape of { flow : flow; mismatches : Sweep.mismatch list }
  | Divergence of { detail : string }

type verdicts = {
  controller : Bisram_bisr.Repair.outcome;
  reference : Bisram_bisr.Repair.outcome;
  iterated : Bisram_bisr.Repair.outcome;
  rounds : int;
  cycles : int;  (** 0 under BIRA (no microprogrammed controller) *)
  alloc : (int list * int list) option;
      (** the armed BIRA allocation (repaired rows, repaired columns);
          [None] for TLB trials and unrepaired BIRA trials *)
}

type trial = {
  t_index : int;  (** -1 for a replay outside a campaign *)
  t_seed : int;
  t_faults : Bisram_faults.Fault.t list;
  t_verdicts : verdicts;
  t_anomalies : anomaly list;
}

(** Run all three flows plus oracle comparison and escape sweeps on an
    explicit fault list (no randomness). *)
val run_faults :
  config -> Bisram_faults.Fault.t list -> verdicts * anomaly list

(** Run the trial at a campaign index (seed derived). *)
val run_trial : config -> index:int -> trial

(** Re-run a single trial from its reported seed. *)
val replay : config -> seed:int -> trial

(** Shrink the fault list of a failing trial to a minimal list that
    still triggers the given anomaly's kind (identity when
    [config.shrink] is false). *)
val shrink_anomaly :
  config -> anomaly -> Bisram_faults.Fault.t list ->
  Bisram_faults.Fault.t list

type histogram = {
  passed_clean : int;
  repaired : int;
  too_many_faulty_rows : int;
  fault_in_second_pass : int;
}

type failure = {
  f_trial : int;
  f_seed : int;
  f_kind : string;  (** "escape" or "divergence" *)
  f_flow : string;  (** "two-pass", "iterated" or "oracle" *)
  f_detail : string;
  f_faults : Bisram_faults.Fault.t list;
  f_shrunk : Bisram_faults.Fault.t list;
}

(** A trial whose own machinery crashed (an exception escaped the
    trial, distinct from a detected escape/divergence in the design
    under test): recorded as an outcome in the report instead of
    aborting the campaign. *)
type tool_error = {
  te_trial : int;
  te_seed : int;
  te_error : string;  (** [Printexc.to_string] of the final exception *)
}

(** Weighted occurrence tally of one failure indicator: how many
    trials fired it, and the sums of their importance weights and
    squared weights (what effective-sample-size interval math
    consumes). *)
type tally = { t_trials : int; t_w : float; t_w2 : float }

(** Importance-weighted campaign tallies, accumulated in strict trial
    order when a proposal is armed.  [w_sum] / [w_sum2] run over {e
    all} [wn] trials; the per-indicator tallies only over trials where
    the indicator fired.  An unbiased nominal-probability estimate of
    an indicator is [tally.t_w /. float wn]. *)
type weighted = {
  wn : int;
  w_sum : float;
  w_sum2 : float;
  w_escape : tally;  (** trials with >= 1 escape (either flow) *)
  w_repair_fail_two_pass : tally;
  w_repair_fail_iterated : tally;
}

type result = {
  config : config;
  trials_run : int;
  truncated : bool;  (** stopped early (wall-clock budget or SIGINT) *)
  resumed_trials : int;
      (** trials served from a resumed checkpoint (not serialized —
          a resumed report stays byte-identical to a cold one) *)
  two_pass : histogram;
  iterated : histogram;
  rounds : (int * int) list;  (** (verify rounds, trial count), sorted *)
  escapes : failure list;
  divergences : failure list;
  tool_errors : tool_error list;
      (** crashed trials, in trial order; they count against the
          observed yields (a trial that crashed did not pass) *)
  observed_yield_two_pass : float;
  observed_yield_iterated : float;
  analytic_yield : float;
      (** {!Bisram_yield.Repairable} prediction for the same geometry
          and fault-count model (array-only: logic fraction 0,
          growth 1) *)
  weighted : weighted option;
      (** importance-weighted tallies; [Some] exactly when the config
          has a proposal (not serialized into the schema-/2 report) *)
}

(** Checkpoint policy for {!run}: where to snapshot, how often, and
    whether to load an existing snapshot first. *)
type checkpoint

(** [checkpoint ~path ?every ?resume ()] — snapshot the contiguous
    prefix of completed trials to [path] (atomic temp + rename in the
    same directory) every [every] completed trials (default [0]:
    never write), plus once at the end of the run.  With [resume]
    (default [false]) an existing snapshot at [path] is loaded first
    and its trials are served from memory instead of recomputed.

    A damaged snapshot (truncated file, invalid JSON, schema or config
    mismatch, out-of-order or wrong-seed records) silently degrades:
    the maximal valid contiguous prefix is used, down to a cold start.
    Trial records are deterministic per (config, index), so a resumed
    report is byte-identical to an uninterrupted run's.  The trial
    count and time budget may differ between the interrupted and the
    resuming config; everything else must match or the snapshot is
    rejected.

    @raise Invalid_argument if [every < 0]. *)
val checkpoint : path:string -> ?every:int -> ?resume:bool -> unit -> checkpoint

(** Cumulative completion counts streamed to [run]'s [on_progress]
    callback — a write-only side channel for live reporting (see
    {!Bisram_obs.Progress}); nothing in it feeds the report. *)
type progress = {
  p_done : int;  (** trials completed so far (resumed ones included) *)
  p_total : int;  (** the window's trial count ([config.trials]) *)
  p_escapes : int;
  p_divergences : int;
  p_tool_errors : int;
  p_clean : int;  (** trials whose whole flow was clean *)
}

(** Run the campaign.  [now] (default {!Bisram_parallel.Clock.now}, a
    monotonic clock immune to wall-time jumps) is only consulted for
    the wall-clock budget; with [max_seconds = None] the run is fully
    deterministic.  [now] is called from the calling domain only, even
    when [jobs > 1], so it need not be safe to share across domains
    (worker domains observe the stop through the pool's internal flag).
    Partial results under a budget are valid and flagged [truncated].

    [should_stop] (default [fun () -> false]) is a caller-supplied
    early-stop predicate polled before every trial from {e every}
    worker domain (so it must be domain-safe — an [Atomic.get] is);
    the CLI routes its SIGINT flag through it.  A stop drains exactly
    like the budget: the report aggregates the maximal contiguous
    prefix of completed trials.

    [jobs] (default 1: fully sequential, no domain spawned) fans the
    trials out over that many domains via {!Bisram_parallel.Pool};
    results are merged in trial-index order, so with no time budget
    the report is byte-identical at every job count.  Under a budget,
    {e how many} trials complete before the cutoff depends on timing at
    any job count, including 1 — but the report always aggregates
    exactly the contiguous prefix [0 .. trials_run - 1]: trials a
    worker finished beyond the first unfinished index are discarded, so
    a truncated report at [jobs = n] equals an unbudgeted sequential
    run over its first [trials_run] trials.

    Fault tolerance: a trial that raises is retried (bounded, for
    {!Bisram_parallel.Pool.Transient}-flagged raises such as injected
    chaos faults) and otherwise recorded as a {!tool_error} outcome —
    the campaign never aborts on a crashing trial.  [trial_deadline]
    (seconds, default none) arms a cooperative per-trial deadline:
    trials poll it between flows and a trial that exceeds it is
    recorded as a tool error ([Pool.Deadline_exceeded]).

    [lanes] (default [1]: the scalar scheduler) packs that many
    consecutive trials into one lane-sliced batch
    ({!Bisram_sram.Lanes}): each bit position of a packed int carries
    one trial's cell state, so one int operation advances the whole
    batch.  Lanes whose entire flow is clean are resolved without ever
    unpacking; any lane with a march failure or sweep mismatch falls
    back to the scalar engine (as do the ragged tail, resumed-prefix
    boundaries and all shrink/replay paths), so the report is
    byte-identical to the scalar scheduler's at every [lanes] and
    [jobs] combination.  Chaos injection, retries and checkpointing
    operate per batch for full batches and per trial on the tail.

    [offset] (default [0]) shifts the whole trial window: the call
    computes trials [offset .. offset + trials - 1] with their global
    derived seeds, so an adaptive driver can grow a campaign batch by
    batch and match a single larger run trial for trial.
    [weighted_init] seeds the weighted accumulation with a previous
    window's running totals, keeping the float sums bit-identical to
    an unwindowed run's.  Checkpoints require [offset = 0] (they
    snapshot a prefix from trial 0).

    [on_progress] (default absent) receives cumulative {!progress}
    counts on the completing worker's domain each time a scheduling
    unit finishes (it must be domain-safe; {!Bisram_obs.Progress} is).
    Like telemetry and events, it cannot change the report: reports
    are byte-identical with or without it.

    @raise Invalid_argument if [jobs < 1], [lanes] is outside
    [1 .. max_lanes], [offset < 0], or a checkpoint is combined with a
    nonzero [offset]. *)
val run :
  ?now:(unit -> float) ->
  ?jobs:int ->
  ?lanes:int ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint:checkpoint ->
  ?trial_deadline:float ->
  ?offset:int ->
  ?weighted_init:weighted ->
  ?on_progress:(progress -> unit) ->
  config ->
  result

(** Merge the results of consecutive [run ~offset] windows (same base
    config, contiguous windows, in order) into the result one run over
    the union would have produced — byte-identical report included
    (weighted sums are taken from the last window, which holds the
    running totals threaded through [weighted_init]).
    @raise Invalid_argument on an empty list or configs that differ in
    anything but the trial count / time budget. *)
val merge_results : result list -> result

val analytic_yield : config -> float
val to_json : result -> Report.t
val json_string : result -> string
val pretty_json_string : result -> string
val fault_json : Bisram_faults.Fault.t -> Report.t
val pp_trial : Format.formatter -> trial -> unit
val pp_anomaly : Format.formatter -> anomaly -> unit
