(* Greedy delta debugging over a list.

   [minimize ~keep items] assumes [keep items = true] and returns a
   sublist (in the original order) on which [keep] still holds and from
   which no single element can be removed without losing the property.
   The search first tries to drop large contiguous chunks (halving the
   chunk size on failure, the ddmin schedule), restarting greedily from
   the head after every successful removal, so typical fault-set
   reproducers collapse in O(n log n) predicate evaluations. *)

let drop_chunk items ~start ~len =
  List.filteri (fun i _ -> i < start || i >= start + len) items

let minimize ~keep items =
  if not (keep items) then items
  else
    let rec shrink items size =
      let n = List.length items in
      if n <= 1 || size < 1 then items
      else
        let size = min size n in
        (* never propose the unchanged list; dropping all of a list of
           exactly [size] elements is allowed iff [keep []] says so *)
        let rec try_from start =
          if start >= n then None
          else
            let len = min size (n - start) in
            let candidate = drop_chunk items ~start ~len in
            if keep candidate then Some candidate else try_from (start + size)
        in
        match try_from 0 with
        | Some smaller -> shrink smaller (min size (List.length smaller))
        | None -> shrink items (size / 2)
    in
    let half = max 1 (List.length items / 2) in
    shrink items half
