(* Rare-event estimation over campaign results: confidence intervals
   on the escape / repair-failure rates, effective-count handling of
   importance-weighted tallies, and an adaptive driver that keeps
   growing a campaign until a target relative CI half-width is met.

   Interval machinery is self-contained (normal quantile, regularized
   incomplete beta via a Lentz continued fraction, bisection inverse)
   and fully deterministic — no special functions from outside the
   repo, identical bytes on every platform that rounds IEEE doubles
   the same way. *)

module J = Report
module Obs = Bisram_obs.Obs
module Events = Bisram_obs.Events
module Defect = Bisram_faults.Defect

type interval = { lo : float; hi : float }

(* ------------------------------------------------------------------ *)
(* normal quantile (Acklam's rational approximation, |eps| < 1.2e-9) *)

let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Estimator.normal_quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02
     ; 1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00
    |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02
     ; 6.680131188771972e+01; -1.328068155288572e+01
    |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00
     ; -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00
    |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00
     ; 3.754408661907416e+00
    |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
    *. q +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p > 1.0 -. p_low then
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
     *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r +. 1.0)

(* ------------------------------------------------------------------ *)
(* regularized incomplete beta and its inverse *)

let log_beta a b = Defect.log_gamma a +. Defect.log_gamma b -. Defect.log_gamma (a +. b)

(* Lentz's continued fraction for I_x(a, b) (Numerical Recipes form) *)
let betacf a b x =
  let tiny = 1e-30 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to 200 do
       let mf = float_of_int m in
       let m2 = 2.0 *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 1e-15 then raise Exit
     done
   with Exit -> ());
  !h

let reg_inc_beta ~a ~b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Estimator.reg_inc_beta: shape parameters must be positive";
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else
    let bt =
      exp ((a *. log x) +. (b *. log (1.0 -. x)) -. log_beta a b)
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)

(* Inverse by bisection: monotone, bounded, and deterministic — 100
   halvings put the answer well below float resolution on [0, 1]. *)
let beta_inv ~a ~b p =
  if p <= 0.0 then 0.0
  else if p >= 1.0 then 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if reg_inc_beta ~a ~b mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* ------------------------------------------------------------------ *)
(* binomial intervals (on real-valued effective counts) *)

let check_counts name ~k ~n =
  if Float.is_nan k || Float.is_nan n || k < 0.0 || n < 0.0 || k > n then
    invalid_arg
      (Printf.sprintf "Estimator.%s: need 0 <= k <= n (got k %g, n %g)" name k
         n)

let check_level name level =
  if not (level > 0.0 && level < 1.0) then
    invalid_arg
      (Printf.sprintf "Estimator.%s: level must be in (0, 1) (got %g)" name
         level)

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let wilson ?(level = 0.95) ~k ~n () =
  check_counts "wilson" ~k ~n;
  check_level "wilson" level;
  if n = 0.0 then { lo = 0.0; hi = 1.0 }
  else begin
    let z = normal_quantile (1.0 -. ((1.0 -. level) /. 2.0)) in
    let p = k /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z
      *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
      /. denom
    in
    { lo = clamp01 (center -. half); hi = clamp01 (center +. half) }
  end

let clopper_pearson ?(level = 0.95) ~k ~n () =
  check_counts "clopper_pearson" ~k ~n;
  check_level "clopper_pearson" level;
  if n = 0.0 then { lo = 0.0; hi = 1.0 }
  else begin
    let alpha = 1.0 -. level in
    let lo =
      if k <= 0.0 then 0.0
      else beta_inv ~a:k ~b:(n -. k +. 1.0) (alpha /. 2.0)
    in
    let hi =
      if k >= n then 1.0
      else beta_inv ~a:(k +. 1.0) ~b:(n -. k) (1.0 -. (alpha /. 2.0))
    in
    { lo; hi }
  end

(* ------------------------------------------------------------------ *)
(* metrics over campaign results *)

type metric = Escape | Repair_failure_two_pass | Repair_failure_iterated

let metric_name = function
  | Escape -> "escape"
  | Repair_failure_two_pass -> "repair_failure_two_pass"
  | Repair_failure_iterated -> "repair_failure_iterated"

type estimate = {
  e_metric : metric;
  e_rate : float;  (** unbiased estimate of the nominal probability *)
  e_hits : int;  (** raw trials where the indicator fired *)
  e_trials : int;  (** raw trials aggregated *)
  e_k_eff : float;
  e_n_eff : float;
  e_level : float;
  e_wilson : interval;
  e_clopper_pearson : interval;
}

(* A trial with escapes in both flows is still one escaping trial. *)
let escape_trials (r : Campaign.result) =
  List.length
    (List.sort_uniq Int.compare
       (List.map (fun f -> f.Campaign.f_trial) r.Campaign.escapes))

let repair_failures (h : Campaign.histogram) =
  h.Campaign.too_many_faulty_rows + h.Campaign.fault_in_second_pass

let raw_hits (r : Campaign.result) = function
  | Escape -> escape_trials r
  | Repair_failure_two_pass -> repair_failures r.Campaign.two_pass
  | Repair_failure_iterated -> repair_failures r.Campaign.iterated

let metric_tally (w : Campaign.weighted) = function
  | Escape -> w.Campaign.w_escape
  | Repair_failure_two_pass -> w.Campaign.w_repair_fail_two_pass
  | Repair_failure_iterated -> w.Campaign.w_repair_fail_iterated

(* Importance-weighted tallies enter the binomial intervals through
   effective counts: with S1 = sum of hit weights and S2 = sum of
   squared hit weights,

     k_eff = S1^2 / S2        n_eff = N * S1 / S2

   keep the point estimate (k_eff / n_eff = S1 / N) and match the
   delta-method variance of the weighted estimator in the rare-event
   regime; with all weights 1 they reduce exactly to (k, N).  No hits
   degrades to (0, N): the interval then reflects the raw trial count,
   which is the defensible choice when the proposal saw nothing. *)
let effective_counts (w : Campaign.weighted) tally =
  let n = float_of_int w.Campaign.wn in
  let s1 = tally.Campaign.t_w and s2 = tally.Campaign.t_w2 in
  if s2 <= 0.0 then (0.0, n)
  else
    let k_eff = s1 *. s1 /. s2 in
    let n_eff = n *. s1 /. s2 in
    (Float.min k_eff n_eff, Float.max k_eff n_eff)

let estimate ?(level = 0.95) (r : Campaign.result) m =
  check_level "estimate" level;
  let hits = raw_hits r m in
  let trials = r.Campaign.trials_run in
  let rate, k_eff, n_eff =
    match r.Campaign.weighted with
    | None ->
        let rate =
          if trials = 0 then 0.0
          else float_of_int hits /. float_of_int trials
        in
        (rate, float_of_int hits, float_of_int trials)
    | Some w ->
        let tally = metric_tally w m in
        let rate =
          if w.Campaign.wn = 0 then 0.0
          else tally.Campaign.t_w /. float_of_int w.Campaign.wn
        in
        let k_eff, n_eff = effective_counts w tally in
        (rate, k_eff, n_eff)
  in
  { e_metric = m
  ; e_rate = rate
  ; e_hits = hits
  ; e_trials = trials
  ; e_k_eff = k_eff
  ; e_n_eff = n_eff
  ; e_level = level
  ; e_wilson = wilson ~level ~k:k_eff ~n:n_eff ()
  ; e_clopper_pearson = clopper_pearson ~level ~k:k_eff ~n:n_eff ()
  }

(* Relative half-width of the Wilson interval: the adaptive stopping
   statistic.  Infinite until the first hit (a zero rate can never meet
   a relative target). *)
let rel_half_width est =
  if est.e_rate <= 0.0 then infinity
  else (est.e_wilson.hi -. est.e_wilson.lo) /. (2.0 *. est.e_rate)

(* ------------------------------------------------------------------ *)
(* adaptive stopping *)

type stop_reason = Target_reached | Trial_cap | Interrupted

let stop_reason_name = function
  | Target_reached -> "target_reached"
  | Trial_cap -> "trial_cap"
  | Interrupted -> "interrupted"

type adaptive = {
  a_result : Campaign.result;
  a_target : float;
  a_metric : metric;
  a_batch : int;
  a_batches : int;
  a_reason : stop_reason;
  a_rel_half_width : float;
}

let run_adaptive ?now ?jobs ?lanes ?should_stop ?trial_deadline ?(batch = 992)
    ?(metric = Repair_failure_two_pass) ?(max_trials = 1_000_000) ?(level = 0.95)
    ?on_progress ?on_batch ~target cfg =
  if not (target > 0.0) then
    invalid_arg "Estimator.run_adaptive: target must be positive";
  if batch < 1 then invalid_arg "Estimator.run_adaptive: batch must be >= 1";
  if max_trials < 1 then
    invalid_arg "Estimator.run_adaptive: max_trials must be >= 1";
  check_level "run_adaptive" level;
  let results = ref [] in
  let offset = ref 0 in
  let weighted_init = ref None in
  let reason = ref Trial_cap in
  let hw = ref infinity in
  (* the campaign reports per-window progress; re-base it on the trials
     already committed by earlier batches so the caller sees one
     monotonic stream against the trial cap.  [base] is only written
     between batches, when no pool worker is running. *)
  let base = ref Campaign.{ p_done = 0; p_total = max_trials; p_escapes = 0
                          ; p_divergences = 0; p_tool_errors = 0; p_clean = 0 }
  in
  let window_progress =
    Option.map
      (fun f (p : Campaign.progress) ->
        let b = !base in
        f
          Campaign.
            { p_done = b.p_done + p.p_done
            ; p_total = max_trials
            ; p_escapes = b.p_escapes + p.p_escapes
            ; p_divergences = b.p_divergences + p.p_divergences
            ; p_tool_errors = b.p_tool_errors + p.p_tool_errors
            ; p_clean = b.p_clean + p.p_clean
            })
      on_progress
  in
  (try
     while !offset < max_trials do
       let n = min batch (max_trials - !offset) in
       let r =
         Campaign.run ?now ?jobs ?lanes ?should_stop ?trial_deadline
           ~offset:!offset ?weighted_init:!weighted_init
           ?on_progress:window_progress
           { cfg with Campaign.trials = n }
       in
       results := r :: !results;
       offset := !offset + r.Campaign.trials_run;
       weighted_init := r.Campaign.weighted;
       let b = !base in
       base :=
         Campaign.
           { p_done = b.p_done + r.Campaign.trials_run
           ; p_total = max_trials
           ; p_escapes = b.p_escapes + List.length r.Campaign.escapes
           ; p_divergences = b.p_divergences + List.length r.Campaign.divergences
           ; p_tool_errors = b.p_tool_errors + List.length r.Campaign.tool_errors
           ; p_clean = b.p_clean + r.Campaign.two_pass.Campaign.passed_clean
           };
       let merged = Campaign.merge_results (List.rev !results) in
       let est = estimate ~level merged metric in
       hw := rel_half_width est;
       Obs.incr "estimator.batches";
       Obs.add "estimator.trials" r.Campaign.trials_run;
       if Float.is_finite est.e_n_eff then
         Obs.observe "estimator.n_eff" (int_of_float est.e_n_eff);
       if Events.would_log Events.Info then
         Events.emit ~domain:"estimator" "estimator.batch"
           [ ("batch", J.Int (List.length !results))
           ; ("trials_total", J.Int !offset)
           ; ("hits", J.Int est.e_hits)
           ; ( "rel_half_width"
             , if Float.is_finite !hw then J.Float !hw else J.Null )
           ];
       (match on_batch with
       | None -> ()
       | Some f ->
           f ~batches:(List.length !results) ~trials:!offset
             ~rel_half_width:!hw);
       if r.Campaign.truncated then begin
         reason := Interrupted;
         raise Exit
       end;
       if !hw <= target then begin
         reason := Target_reached;
         raise Exit
       end
     done
   with Exit -> ());
  let merged = Campaign.merge_results (List.rev !results) in
  Events.emit ~domain:"estimator" "estimator.stop"
    [ ("reason", J.String (stop_reason_name !reason))
    ; ("batches", J.Int (List.length !results))
    ; ("trials_total", J.Int !offset)
    ; ( "rel_half_width"
      , if Float.is_finite !hw then J.Float !hw else J.Null )
    ];
  { a_result = merged
  ; a_target = target
  ; a_metric = metric
  ; a_batch = batch
  ; a_batches = List.length !results
  ; a_reason = !reason
  ; a_rel_half_width = !hw
  }

(* ------------------------------------------------------------------ *)
(* the schema-/3 report *)

let interval_json i = J.interval_json ~lo:i.lo ~hi:i.hi

let estimate_json est =
  J.Obj
    [ ("rate", J.Float est.e_rate)
    ; ("hits", J.Int est.e_hits)
    ; ("k_eff", J.Float est.e_k_eff)
    ; ("n_eff", J.Float est.e_n_eff)
    ; ("wilson", interval_json est.e_wilson)
    ; ("clopper_pearson", interval_json est.e_clopper_pearson)
    ]

let confidence_json ?(level = 0.95) r =
  J.Obj
    [ ("level", J.Float level)
    ; ("escape", estimate_json (estimate ~level r Escape))
    ; ( "repair_failure_two_pass"
      , estimate_json (estimate ~level r Repair_failure_two_pass) )
    ; ( "repair_failure_iterated"
      , estimate_json (estimate ~level r Repair_failure_iterated) )
    ]

let estimation_json (w : Campaign.weighted) =
  (* Kish effective sample size over all trials: how much nominal
     sample the weighted draw is worth overall *)
  let ess =
    if w.Campaign.w_sum2 <= 0.0 then 0.0
    else w.Campaign.w_sum *. w.Campaign.w_sum /. w.Campaign.w_sum2
  in
  J.Obj
    [ ("weighted_trials", J.Int w.Campaign.wn)
    ; ("weight_sum", J.Float w.Campaign.w_sum)
    ; ("weight_sum_sq", J.Float w.Campaign.w_sum2)
    ; ("ess", J.Float ess)
    ]

let adaptive_json a =
  J.Obj
    [ ("target_rel_half_width", J.Float a.a_target)
    ; ("metric", J.String (metric_name a.a_metric))
    ; ("batch", J.Int a.a_batch)
    ; ("batches", J.Int a.a_batches)
    ; ("rel_half_width", J.Float a.a_rel_half_width)
    ; ("reason", J.String (stop_reason_name a.a_reason))
    ]

(* The /3 report is the /2 report with the schema field rewritten and
   the estimation sections appended — a strict superset, so consumers
   of the /2 fields keep working and the byte-identity property of the
   underlying document is preserved field for field. *)
let report_json ?(level = 0.95) ?adaptive (r : Campaign.result) =
  let base =
    match Campaign.to_json r with
    | J.Obj fields ->
        List.map
          (function
            | "schema", J.String _ -> ("schema", J.String "bisram-campaign/3")
            | kv -> kv)
          fields
    | _ -> assert false
  in
  let extra =
    [ ("confidence", confidence_json ~level r) ]
    @ (match r.Campaign.weighted with
      | None -> []
      | Some w -> [ ("estimation", estimation_json w) ])
    @
    match adaptive with
    | None -> []
    | Some a -> [ ("adaptive", adaptive_json a) ]
  in
  J.Obj (base @ extra)

let report_string ?level ?adaptive r =
  J.to_string (report_json ?level ?adaptive r)

let pretty_report_string ?level ?adaptive r =
  J.to_pretty_string (report_json ?level ?adaptive r)
