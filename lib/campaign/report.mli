(** A minimal deterministic JSON representation for campaign reports —
    an alias of {!Bisram_obs.Json}, which the telemetry exporters share.

    Serialization is fully deterministic: object fields are emitted in
    the order given, floats through a fixed ["%.9g"] format (integral
    values as ["%.1f"]), so the same report value always produces the
    same bytes — the property the campaign's replay discipline relies
    on. *)

type t = Bisram_obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. *)
val to_string : t -> string

(** Two-space-indented rendering, trailing newline (the CLI output). *)
val to_pretty_string : t -> string

(** See {!Bisram_obs.Json.of_string}. *)
val of_string : string -> (t, string) result

(** See {!Bisram_obs.Json.member}. *)
val member : string -> t -> t option

(** [interval_json ~lo ~hi] — the canonical [{"lo": …, "hi": …}]
    rendering of a confidence interval. *)
val interval_json : lo:float -> hi:float -> t
