(** Independent post-repair array sweep: the campaign's escape
    detector.

    After the BIST/BISR flow declares a RAM good ([Passed_clean] or
    [Repaired]), the sweep exercises every logical address through the
    installed remap with write/read-back passes over four data
    backgrounds (all-0, all-1 and an address-alternating checkerboard
    pair), in both address orders, plus a retention wait per
    background.  Any mismatch is a {e test escape}: a faulty cell still
    reachable at a logical address although verification passed.

    The sweep is deliberately not a march test — it shares no code with
    {!Bisram_bist.Engine} or the microprogrammed controller, so it can
    catch faults the march algorithm itself fails to cover (e.g.
    stuck-open or data-retention faults under a weak march). *)

type phase = Read_up | Read_down | Retention

type mismatch = {
  addr : int;  (** logical word address *)
  pattern : string;  (** background name: all-0, all-1, checker, checker-inv *)
  phase : phase;
  expected : Bisram_sram.Word.t;
  got : Bisram_sram.Word.t;
}

val phase_name : phase -> string

(** [run model] sweeps the model as-is (faults and remap installed) and
    returns every mismatch in detection order.  With
    [~stop_at_first:true] at most one mismatch is returned (cheaper —
    used as the shrinking predicate).  Array contents are destroyed. *)
val run : ?stop_at_first:bool -> Bisram_sram.Model.t -> mismatch list

(** No mismatch at all (early-stopping). *)
val clean : Bisram_sram.Model.t -> bool

(** Lane-wise sweep over a batch store: the same pattern walk reduced
    to a per-lane fail mask (bit [l] set iff lane [l] mismatched at
    least once).  Like {!run}, sweeps the store as-is — no initial
    clear.  Stops early once every lane has failed. *)
val run_lanes : Bisram_sram.Lanes.t -> int

val pp_mismatch : Format.formatter -> mismatch -> unit
