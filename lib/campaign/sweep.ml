module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module Word = Bisram_sram.Word

type phase = Read_up | Read_down | Retention

type mismatch = {
  addr : int;
  pattern : string;
  phase : phase;
  expected : Word.t;
  got : Word.t;
}

let phase_name = function
  | Read_up -> "read-up"
  | Read_down -> "read-down"
  | Retention -> "retention"

(* Data backgrounds of the sweep.  All-0 and all-1 exercise both cell
   polarities (and both data-retention decay directions after the wait);
   the checkerboard pair alternates the data along every I/O bit column
   from one address to the next, so a read observes the complement of
   the previous read on the same sense amplifier — the read-after-read
   sequence that exposes stuck-open cells the march may have missed. *)
let patterns org =
  let bpw = org.Org.bpw in
  let zero = Word.zero bpw and ones = Word.ones bpw in
  let alt = Word.init bpw (fun i -> i land 1 = 0) in
  let alt' = Word.lnot_ alt in
  [ ("all-0", fun _ -> zero)
  ; ("all-1", fun _ -> ones)
  ; ("checker", fun a -> if a land 1 = 0 then alt else alt')
  ; ("checker-inv", fun a -> if a land 1 = 0 then alt' else alt)
  ]

exception Found of mismatch

let run ?(stop_at_first = false) model =
  let org = Model.org model in
  let words = org.Org.words in
  let mismatches = ref [] in
  let check ~pattern ~phase ~data addr =
    let expected = data addr in
    let got = Model.read_word model addr in
    if not (Word.equal expected got) then begin
      let m = { addr; pattern; phase; expected; got } in
      if stop_at_first then raise (Found m);
      mismatches := m :: !mismatches
    end
  in
  try
    List.iter
      (fun (pattern, data) ->
        for a = 0 to words - 1 do
          Model.write_word model a (data a)
        done;
        for a = 0 to words - 1 do
          check ~pattern ~phase:Read_up ~data a
        done;
        for a = words - 1 downto 0 do
          check ~pattern ~phase:Read_down ~data a
        done;
        Model.retention_wait model;
        for a = 0 to words - 1 do
          check ~pattern ~phase:Retention ~data a
        done)
      (patterns org);
    List.rev !mismatches
  with Found m -> [ m ]

let clean model = run ~stop_at_first:true model = []

exception Saturated

(* Lane-wise sweep over a batch store: same pattern walk as [run], but
   the mismatch detail is reduced to a per-lane fail mask (a failing
   lane is re-swept by the scalar path for the report detail).  No
   initial clear — like [run], the sweep exercises the array as the
   flow left it. *)
let run_lanes lanes =
  let module Lanes = Bisram_sram.Lanes in
  let org = Lanes.org lanes in
  let words = org.Org.words in
  let all = Lanes.all_mask lanes in
  let fail = ref 0 in
  let check ~data addr =
    fail := !fail lor Lanes.read_mismatch lanes addr (data addr);
    if !fail = all then raise Saturated
  in
  (try
     List.iter
       (fun (_pattern, data) ->
         for a = 0 to words - 1 do
           Lanes.write_word lanes a (data a)
         done;
         for a = 0 to words - 1 do
           check ~data a
         done;
         for a = words - 1 downto 0 do
           check ~data a
         done;
         Lanes.retention_wait lanes;
         for a = 0 to words - 1 do
           check ~data a
         done)
       (patterns org);
     !fail
   with Saturated -> all)

let pp_mismatch ppf m =
  Format.fprintf ppf "addr %d [%s/%s]: expected %a, got %a" m.addr m.pattern
    (phase_name m.phase) Word.pp m.expected Word.pp m.got
