(** Rare-event estimation over campaign results.

    Three layers on top of {!Campaign}:

    - binomial confidence intervals (Wilson and Clopper-Pearson) on
      the escape and repair-failure rates of any campaign result,
      importance-weighted results included (weighted tallies enter
      through effective counts);
    - an adaptive driver ({!run_adaptive}) that grows a campaign batch
      by batch until the Wilson interval's relative half-width on a
      chosen metric reaches a target;
    - the schema-[bisram-campaign/3] report: the /2 document with a
      [confidence] section always appended, plus [estimation] /
      [adaptive] sections when biased sampling or adaptive stopping
      were in play.

    All interval math is self-contained and deterministic, so reports
    stay byte-identical at every jobs / lanes combination. *)

type interval = { lo : float; hi : float }

(** Inverse standard normal CDF (Acklam's rational approximation,
    absolute error < 1.3e-9).  @raise Invalid_argument outside (0,1). *)
val normal_quantile : float -> float

(** Regularized incomplete beta function I_x(a, b) (continued
    fraction).  @raise Invalid_argument unless [a, b > 0]. *)
val reg_inc_beta : a:float -> b:float -> float -> float

(** Inverse of {!reg_inc_beta} in x, by bisection (monotone, exact to
    float resolution on [0,1]). *)
val beta_inv : a:float -> b:float -> float -> float

(** Wilson score interval for [k] successes in [n] trials at the given
    two-sided [level] (default 0.95).  Real-valued counts are allowed
    (effective counts from weighted tallies); [n = 0] gives [0, 1].
    @raise Invalid_argument unless [0 <= k <= n] and [level] in (0,1). *)
val wilson : ?level:float -> k:float -> n:float -> unit -> interval

(** Clopper-Pearson (exact) interval, generalized to real-valued
    counts through the beta quantiles.  Same contract as {!wilson}. *)
val clopper_pearson : ?level:float -> k:float -> n:float -> unit -> interval

(** Which campaign failure rate is being estimated.  [Escape] counts
    trials with at least one silent escape in either flow;
    the repair-failure metrics count trials whose final outcome was
    [too_many_faulty_rows] or [fault_in_second_pass]. *)
type metric = Escape | Repair_failure_two_pass | Repair_failure_iterated

val metric_name : metric -> string

type estimate = {
  e_metric : metric;
  e_rate : float;  (** unbiased estimate of the nominal probability *)
  e_hits : int;  (** raw trials where the indicator fired *)
  e_trials : int;  (** raw trials aggregated *)
  e_k_eff : float;  (** effective success count fed to the intervals *)
  e_n_eff : float;  (** effective trial count fed to the intervals *)
  e_level : float;
  e_wilson : interval;
  e_clopper_pearson : interval;
}

(** Point estimate and intervals for one metric of a result.  For an
    unweighted result the effective counts are the raw ones; for a
    weighted result they are [S1^2/S2] and [N*S1/S2] (S1, S2 the sums
    of hit weights and squared hit weights), which keep the point
    estimate and match the delta-method variance of the
    importance-sampling estimator; all-weights-1 reduces exactly to
    the raw counts. *)
val estimate : ?level:float -> Campaign.result -> metric -> estimate

(** Relative half-width of the estimate's Wilson interval —
    [(hi - lo) / (2 * rate)], the adaptive stopping statistic;
    [infinity] while the rate is zero. *)
val rel_half_width : estimate -> float

type stop_reason =
  | Target_reached  (** relative half-width <= target *)
  | Trial_cap  (** [max_trials] exhausted first *)
  | Interrupted  (** a window was truncated (budget or [should_stop]) *)

val stop_reason_name : stop_reason -> string

type adaptive = {
  a_result : Campaign.result;  (** the merged campaign over all batches *)
  a_target : float;
  a_metric : metric;
  a_batch : int;
  a_batches : int;
  a_reason : stop_reason;
  a_rel_half_width : float;  (** achieved value at stop *)
}

(** Grow the campaign [batch] trials at a time (default 992 = 16 full
    62-wide lane batches) until the Wilson relative half-width on
    [metric] (default [Repair_failure_two_pass]) reaches [target], the
    total hits [max_trials] (default 1_000_000), or a window is cut
    short by the budget / [should_stop].  Windows run through
    {!Campaign.run} with increasing [offset] and threaded
    [weighted_init], so the merged result — and hence the report — is
    byte-identical to a single fixed-trial run of the same total size.
    [now], [jobs], [lanes], [should_stop], [trial_deadline] pass
    through to {!Campaign.run}.  Checkpointing is not supported under
    adaptive growth.

    [on_progress] passes through to every window's {!Campaign.run},
    re-based so [p_done]/anomaly counts accumulate across batches and
    [p_total] is [max_trials] (the only total known up front).
    [on_batch] fires after each batch's CI evaluation with the batch
    count, cumulative trials and the achieved relative half-width —
    the seam the CLI uses to surface the stopping statistic live.
    Both are write-only side channels: reports are identical with or
    without them.
    @raise Invalid_argument unless [target > 0], [batch >= 1],
    [max_trials >= 1] and [level] in (0,1). *)
val run_adaptive :
  ?now:(unit -> float) ->
  ?jobs:int ->
  ?lanes:int ->
  ?should_stop:(unit -> bool) ->
  ?trial_deadline:float ->
  ?batch:int ->
  ?metric:metric ->
  ?max_trials:int ->
  ?level:float ->
  ?on_progress:(Campaign.progress -> unit) ->
  ?on_batch:(batches:int -> trials:int -> rel_half_width:float -> unit) ->
  target:float ->
  Campaign.config ->
  adaptive

(** The [confidence] report section: interval estimates for all three
    metrics at [level] (default 0.95). *)
val confidence_json : ?level:float -> Campaign.result -> Report.t

(** The schema-[bisram-campaign/3] report: {!Campaign.to_json} with the
    schema field rewritten and [confidence] (always), [estimation]
    (when the result is weighted) and [adaptive] (when given) sections
    appended — a strict superset of the /2 document. *)
val report_json : ?level:float -> ?adaptive:adaptive -> Campaign.result -> Report.t

val report_string : ?level:float -> ?adaptive:adaptive -> Campaign.result -> string

val pretty_report_string :
  ?level:float -> ?adaptive:adaptive -> Campaign.result -> string
