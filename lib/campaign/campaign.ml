module Org = Bisram_sram.Org
module Model = Bisram_sram.Model
module March = Bisram_bist.March
module Datagen = Bisram_bist.Datagen
module Fault = Bisram_faults.Fault
module Injection = Bisram_faults.Injection
module Repair = Bisram_bisr.Repair
module Tlb = Bisram_bisr.Tlb
module Repairable = Bisram_yield.Repairable
module Bira = Bisram_bira.Bira
module Proposal = Bisram_faults.Proposal
module Obs = Bisram_obs.Obs
module Events = Bisram_obs.Events
module Pool = Bisram_parallel.Pool
module Chaos = Bisram_chaos.Chaos
module J = Report

(* ------------------------------------------------------------------ *)
(* configuration *)

type mode =
  | Uniform of int
  | Poisson of float
  | Clustered of { mean : float; alpha : float }

(* Which repair architecture a trial exercises.  [Row_tlb] is the
   paper's row-only TLB flow and the default; [Bira] runs the 2D
   spare-row + spare-column flow with the named allocator. *)
type repair = Row_tlb | Bira of Bira.strategy

let repair_name = function
  | Row_tlb -> "row-tlb"
  | Bira s -> Bira.strategy_name s

let repair_of_name = function
  | "row-tlb" -> Some Row_tlb
  | s -> Option.map (fun st -> Bira st) (Bira.strategy_of_name s)

type config = {
  org : Org.t;
  march : March.t;
  mix : Injection.mix;
  mode : mode;
  proposal : Proposal.t option;
  repair : repair;
  trials : int;
  seed : int;
  max_seconds : float option;
  shrink : bool;
  max_rounds : int;
}

(* The proposal layer speaks [Proposal.count_model]; the campaign mode
   is exactly that plus nothing, so the mapping is a rename. *)
let count_model_of_mode = function
  | Uniform n -> Proposal.Fixed n
  | Poisson mean -> Proposal.Poisson mean
  | Clustered { mean; alpha } -> Proposal.Clustered { mean; alpha }

let make_config ?(org = Org.make ~words:64 ~bpw:8 ~bpc:4 ~spares:4 ())
    ?march ?(mix = Injection.default_mix) ?(mode = Uniform 2) ?proposal
    ?(repair = Row_tlb) ?(trials = 100) ?(seed = 42) ?max_seconds
    ?(shrink = true) ?(max_rounds = 8) () =
  let march =
    match march with Some m -> m | None -> Bisram_bist.Algorithms.ifa_9
  in
  Injection.validate_mix mix;
  if not (Org.simulable org) then
    invalid_arg "Campaign.make_config: organization is not simulable (bpw too wide)";
  if trials < 0 then invalid_arg "Campaign.make_config: trials";
  if max_rounds < 1 then invalid_arg "Campaign.make_config: max_rounds";
  (match mode with
  | Uniform n when n < 0 -> invalid_arg "Campaign.make_config: faults"
  | Poisson m when m < 0.0 -> invalid_arg "Campaign.make_config: mean"
  | Clustered { mean; alpha } when mean < 0.0 || alpha <= 0.0 ->
      invalid_arg "Campaign.make_config: mean/alpha"
  | _ -> ());
  (* identity proposals are normalized to [None] so that "no biasing"
     has one spelling: reports, checkpoint compat strings and the
     estimation-on predicate all agree *)
  let proposal =
    match proposal with
    | Some p when Proposal.is_nominal p -> None
    | p -> p
  in
  Option.iter
    (fun p -> Proposal.validate ~nominal_mix:mix (count_model_of_mode mode) p)
    proposal;
  { org; march; mix; mode; proposal; repair; trials; seed; max_seconds
  ; shrink; max_rounds }

(* ------------------------------------------------------------------ *)
(* seed discipline *)

(* Every trial is driven by its own integer seed, derived from the
   campaign seed by an avalanching integer mix, so a one-line
   [--replay SEED] reconstructs any trial without re-running the
   campaign.  Masked to 30 bits to keep seeds short and portable. *)
let mix_int x =
  let x = x land max_int in
  let x = x lxor (x lsr 33) in
  let x = x * 0x735A2D97 land max_int in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B873593 land max_int in
  x lxor (x lsr 32)

let trial_seed cfg i = mix_int ((cfg.seed * 0x3C6EF35F) + i + 1) land 0x3FFFFFFF

let rng_of_seed seed = Random.State.make [| 0xB15; seed |]

(* ------------------------------------------------------------------ *)
(* fault drawing *)

let draw_faults cfg rng =
  (* the defect field covers the whole physical array, spare lines
     included; with [spare_cols = 0] this is exactly the old grid *)
  let rows = Org.total_rows cfg.org and cols = Org.total_cols cfg.org in
  match cfg.proposal with
  | Some p ->
      Proposal.draw p ~count:(count_model_of_mode cfg.mode) ~mix:cfg.mix rng
        ~rows ~cols
  | None -> (
      match cfg.mode with
      | Uniform n -> Injection.inject rng ~rows ~cols ~mix:cfg.mix ~n
      | Poisson mean ->
          Injection.inject_poisson rng ~rows ~cols ~mix:cfg.mix ~mean
      | Clustered { mean; alpha } ->
          Injection.inject_clustered rng ~rows ~cols ~mix:cfg.mix ~mean ~alpha)

(* The importance weight of a trial, recovered by redrawing its fault
   list from the derived seed — a pure O(faults) function of
   (config, index), so weights never need to travel through trial
   records or the checkpoint wire format.  [0.0] log-weight (ratio 1)
   when estimation is off. *)
let trial_log_weight cfg ~index =
  match cfg.proposal with
  | None -> 0.0
  | Some p ->
      let faults = draw_faults cfg (rng_of_seed (trial_seed cfg index)) in
      Proposal.log_weight p ~count:(count_model_of_mode cfg.mode) ~mix:cfg.mix
        faults

let trial_weight cfg ~index = exp (trial_log_weight cfg ~index)

(* ------------------------------------------------------------------ *)
(* one trial: differential oracle + escape sweeps *)

type flow = Two_pass | Iterated

let flow_name = function Two_pass -> "two-pass" | Iterated -> "iterated"

type anomaly =
  | Escape of { flow : flow; mismatches : Sweep.mismatch list }
  | Divergence of { detail : string }

let success = function
  | Repair.Passed_clean | Repair.Repaired _ -> true
  | Repair.Repair_unsuccessful _ -> false

let outcome_equal (a : Repair.outcome) (b : Repair.outcome) =
  match (a, b) with
  | Repair.Passed_clean, Repair.Passed_clean -> true
  | Repair.Repaired ra, Repair.Repaired rb -> ra = rb
  | Repair.Repair_unsuccessful ra, Repair.Repair_unsuccessful rb -> ra = rb
  | _, _ -> false

let model_with cfg faults =
  let m = Model.create cfg.org in
  Model.set_faults m faults;
  m

let backgrounds cfg = Datagen.required_backgrounds ~bpw:cfg.org.Org.bpw

type verdicts = {
  controller : Repair.outcome;
  reference : Repair.outcome;
  iterated : Repair.outcome;
  rounds : int;
  cycles : int;
  alloc : (int list * int list) option;
}

(* Flush the per-model access-regime counters into the telemetry
   registry; summed over the three per-trial models (and over trials by
   the registry merge), they give the campaign-wide fast/legacy hit
   ratios.  Deterministic values, so the merged counters are identical
   at every job count. *)
let flush_model_stats m =
  let s = Model.stats m in
  Obs.add "model.reads" s.Model.s_reads;
  Obs.add "model.writes" s.Model.s_writes;
  Obs.add "model.fast_reads" s.Model.s_fast_reads;
  Obs.add "model.fast_writes" s.Model.s_fast_writes;
  Obs.add "model.legacy_reads" (s.Model.s_reads - s.Model.s_fast_reads);
  Obs.add "model.legacy_writes" (s.Model.s_writes - s.Model.s_fast_writes);
  Obs.add "model.rows_migrated" s.Model.s_rows_migrated;
  Obs.add "model.rows_cleared" s.Model.s_rows_cleared

(* The BIRA analogue of the TLB trial below.  There is no
   microprogrammed controller for the 2D flow, so the differential
   oracle holds the packed-word comparator analog ([fast:true] fault
   extraction) against the bit-by-bit reference, on outcome AND on the
   allocation itself; [cycles] is 0.  The flow is inherently iterated
   (spare burning), so the two-pass and iterated verdicts coincide, and
   both armed models are swept for silent escapes. *)
let run_faults_bira cfg strat faults =
  let bgs = backgrounds cfg in
  let mc = model_with cfg faults in
  let c_res =
    Obs.span ~cat:"campaign" "march" (fun () ->
        Bira.run ~max_rounds:cfg.max_rounds ~fast:true strat mc cfg.march
          ~backgrounds:bgs)
  in
  Pool.check_deadline ();
  let mr = model_with cfg faults in
  let r_res =
    Obs.span ~cat:"campaign" "oracle" (fun () ->
        Bira.run ~max_rounds:cfg.max_rounds ~fast:false strat mr cfg.march
          ~backgrounds:bgs)
  in
  Pool.check_deadline ();
  let anomalies = ref [] in
  let push a = anomalies := a :: !anomalies in
  let alloc_str = function
    | None -> "none"
    | Some a ->
        Printf.sprintf "rows [%s] cols [%s]"
          (String.concat "," (List.map string_of_int a.Bira.a_rows))
          (String.concat "," (List.map string_of_int a.Bira.a_cols))
  in
  if not (outcome_equal c_res.Bira.b_outcome r_res.Bira.b_outcome) then
    push
      (Divergence
         { detail =
             Format.asprintf "outcome: controller %a, reference %a"
               Repair.pp_outcome c_res.Bira.b_outcome Repair.pp_outcome
               r_res.Bira.b_outcome
         })
  else if
    success c_res.Bira.b_outcome && c_res.Bira.b_alloc <> r_res.Bira.b_alloc
  then
    push
      (Divergence
         { detail =
             Printf.sprintf "BIRA alloc: controller %s, reference %s"
               (alloc_str c_res.Bira.b_alloc)
               (alloc_str r_res.Bira.b_alloc)
         });
  if success c_res.Bira.b_outcome then begin
    match Obs.span ~cat:"campaign" "escape-sweep" (fun () -> Sweep.run mc) with
    | [] -> ()
    | mismatches -> push (Escape { flow = Two_pass; mismatches })
  end;
  if success r_res.Bira.b_outcome then begin
    match Obs.span ~cat:"campaign" "escape-sweep" (fun () -> Sweep.run mr) with
    | [] -> ()
    | mismatches -> push (Escape { flow = Iterated; mismatches })
  end;
  if Obs.enabled () then begin
    flush_model_stats mc;
    flush_model_stats mr;
    Obs.observe "campaign.repair_rounds" c_res.Bira.b_rounds
  end;
  ( { controller = c_res.Bira.b_outcome
    ; reference = r_res.Bira.b_outcome
    ; iterated = c_res.Bira.b_outcome
    ; rounds = c_res.Bira.b_rounds
    ; cycles = 0
    ; alloc =
        Option.map
          (fun a -> (a.Bira.a_rows, a.Bira.a_cols))
          c_res.Bira.b_alloc
    }
  , List.rev !anomalies )

let run_faults_tlb cfg faults =
  let bgs = backgrounds cfg in
  (* fresh model per flow: each run mutates array contents and remap *)
  let mc = model_with cfg faults in
  let controller, report, c_tlb =
    Obs.span ~cat:"campaign" "march" (fun () ->
        Repair.run mc cfg.march ~backgrounds:bgs)
  in
  (* between flows: the cooperative per-trial deadline (a no-op unless
     the caller set one on the pool) *)
  Pool.check_deadline ();
  let mr = model_with cfg faults in
  let reference, r_tlb =
    Obs.span ~cat:"campaign" "oracle" (fun () ->
        Repair.run_reference mr cfg.march ~backgrounds:bgs)
  in
  Pool.check_deadline ();
  let mi = model_with cfg faults in
  let it =
    Obs.span ~cat:"campaign" "repair" (fun () ->
        Repair.run_iterated_result ~max_rounds:cfg.max_rounds mi cfg.march
          ~backgrounds:bgs)
  in
  Pool.check_deadline ();
  let anomalies = ref [] in
  let push a = anomalies := a :: !anomalies in
  (* oracle divergence: microprogrammed controller vs functional engine *)
  if not (outcome_equal controller reference) then
    push
      (Divergence
         { detail =
             Format.asprintf "outcome: controller %a, reference %a"
               Repair.pp_outcome controller Repair.pp_outcome reference
         })
  else if
    success controller && Tlb.mapped_rows c_tlb <> Tlb.mapped_rows r_tlb
  then
    push
      (Divergence
         { detail =
             Format.asprintf "TLB: controller rows [%s], reference rows [%s]"
               (String.concat ","
                  (List.map string_of_int (Tlb.mapped_rows c_tlb)))
               (String.concat ","
                  (List.map string_of_int (Tlb.mapped_rows r_tlb)))
         });
  (* silent escapes: the array disagrees with a passing verdict *)
  if success controller then begin
    match Obs.span ~cat:"campaign" "escape-sweep" (fun () -> Sweep.run mc) with
    | [] -> ()
    | mismatches -> push (Escape { flow = Two_pass; mismatches })
  end;
  if success it.Repair.i_outcome then begin
    match Obs.span ~cat:"campaign" "escape-sweep" (fun () -> Sweep.run mi) with
    | [] -> ()
    | mismatches -> push (Escape { flow = Iterated; mismatches })
  end;
  if Obs.enabled () then begin
    flush_model_stats mc;
    flush_model_stats mr;
    flush_model_stats mi;
    Obs.observe "campaign.cycles"
      report.Bisram_bist.Controller.cycles;
    Obs.observe "campaign.repair_rounds" it.Repair.i_rounds
  end;
  ( { controller
    ; reference
    ; iterated = it.Repair.i_outcome
    ; rounds = it.Repair.i_rounds
    ; cycles = report.Bisram_bist.Controller.cycles
    ; alloc = None
    }
  , List.rev !anomalies )

let run_faults cfg faults =
  match cfg.repair with
  | Row_tlb -> run_faults_tlb cfg faults
  | Bira strat -> run_faults_bira cfg strat faults

type trial = {
  t_index : int;  (** -1 for a replay outside a campaign *)
  t_seed : int;
  t_faults : Fault.t list;
  t_verdicts : verdicts;
  t_anomalies : anomaly list;
}

let run_seeded cfg ~index ~seed =
  Obs.span ~cat:"campaign" ~arg:("trial", index) "trial" (fun () ->
      let faults =
        Obs.span ~cat:"campaign" "inject" (fun () ->
            draw_faults cfg (rng_of_seed seed))
      in
      let verdicts, anomalies = run_faults cfg faults in
      Obs.incr "campaign.trials";
      Obs.add "campaign.faults_injected" (List.length faults);
      Obs.observe "campaign.faults_per_trial" (List.length faults);
      { t_index = index
      ; t_seed = seed
      ; t_faults = faults
      ; t_verdicts = verdicts
      ; t_anomalies = anomalies
      })

let run_trial cfg ~index = run_seeded cfg ~index ~seed:(trial_seed cfg index)
let replay cfg ~seed = run_seeded cfg ~index:(-1) ~seed

(* ------------------------------------------------------------------ *)
(* shrinking *)

(* Cheap re-checks used as the delta-debugging predicate: only the flow
   that produced the failure is re-run. *)
let check_escape cfg ~flow faults =
  let bgs = backgrounds cfg in
  let m = model_with cfg faults in
  let outcome =
    match cfg.repair with
    | Bira strat ->
        (* under BIRA the two flow labels name the two extraction
           sides: Two_pass carries the packed analog, Iterated the
           bit-by-bit reference (see [run_faults_bira]) *)
        let fast = match flow with Two_pass -> true | Iterated -> false in
        (Bira.run ~max_rounds:cfg.max_rounds ~fast strat m cfg.march
           ~backgrounds:bgs)
          .Bira.b_outcome
    | Row_tlb -> (
        match flow with
        | Two_pass ->
            let outcome, _, _ = Repair.run m cfg.march ~backgrounds:bgs in
            outcome
        | Iterated ->
            (Repair.run_iterated_result ~max_rounds:cfg.max_rounds m cfg.march
               ~backgrounds:bgs)
              .Repair.i_outcome)
  in
  success outcome && not (Sweep.clean m)

let check_divergence cfg faults =
  let bgs = backgrounds cfg in
  match cfg.repair with
  | Bira strat ->
      let mc = model_with cfg faults in
      let c =
        Bira.run ~max_rounds:cfg.max_rounds ~fast:true strat mc cfg.march
          ~backgrounds:bgs
      in
      let mr = model_with cfg faults in
      let r =
        Bira.run ~max_rounds:cfg.max_rounds ~fast:false strat mr cfg.march
          ~backgrounds:bgs
      in
      (not (outcome_equal c.Bira.b_outcome r.Bira.b_outcome))
      || (success c.Bira.b_outcome && c.Bira.b_alloc <> r.Bira.b_alloc)
  | Row_tlb ->
      let mc = model_with cfg faults in
      let controller, _, c_tlb = Repair.run mc cfg.march ~backgrounds:bgs in
      let mr = model_with cfg faults in
      let reference, r_tlb =
        Repair.run_reference mr cfg.march ~backgrounds:bgs
      in
      (not (outcome_equal controller reference))
      || (success controller && Tlb.mapped_rows c_tlb <> Tlb.mapped_rows r_tlb)

let shrink_anomaly cfg anomaly faults =
  if not cfg.shrink then faults
  else
    let keep =
      match anomaly with
      | Escape { flow; _ } -> check_escape cfg ~flow
      | Divergence _ -> check_divergence cfg
    in
    Shrink.minimize ~keep faults

(* ------------------------------------------------------------------ *)
(* campaign results *)

type histogram = {
  passed_clean : int;
  repaired : int;
  too_many_faulty_rows : int;
  fault_in_second_pass : int;
}

let empty_histogram =
  { passed_clean = 0
  ; repaired = 0
  ; too_many_faulty_rows = 0
  ; fault_in_second_pass = 0
  }

(* Outcome classes travel as strings because they are exactly what the
   report histograms and the checkpoint records need — the full
   [Repair.outcome] payload (the repaired row list) never reaches the
   report, so serializing it would only widen the checkpoint format. *)
let outcome_class = function
  | Repair.Passed_clean -> "passed_clean"
  | Repair.Repaired _ -> "repaired"
  | Repair.Repair_unsuccessful Repair.Too_many_faulty_rows ->
      "too_many_faulty_rows"
  | Repair.Repair_unsuccessful Repair.Fault_in_second_pass ->
      "fault_in_second_pass"

let class_known = function
  | "passed_clean" | "repaired" | "too_many_faulty_rows"
  | "fault_in_second_pass" ->
      true
  | _ -> false

let count_class h = function
  | "passed_clean" -> { h with passed_clean = h.passed_clean + 1 }
  | "repaired" -> { h with repaired = h.repaired + 1 }
  | "too_many_faulty_rows" ->
      { h with too_many_faulty_rows = h.too_many_faulty_rows + 1 }
  | "fault_in_second_pass" ->
      { h with fault_in_second_pass = h.fault_in_second_pass + 1 }
  | c -> invalid_arg ("Campaign: unknown outcome class " ^ c)

type failure = {
  f_trial : int;
  f_seed : int;
  f_kind : string;  (** "escape" or "divergence" *)
  f_flow : string;  (** "two-pass", "iterated" or "oracle" *)
  f_detail : string;
  f_faults : Fault.t list;
  f_shrunk : Fault.t list;
}

type tool_error = {
  te_trial : int;
  te_seed : int;
  te_error : string;
}

(* Weighted-tally machinery for the estimator layer.  When a proposal
   is armed, every trial carries an importance weight w; a tally keeps
   the trial count, sum of weights and sum of squared weights of the
   trials where some indicator fired, which is all the downstream
   effective-sample-size interval math needs.  Sums accumulate in
   strict trial-index order (and [run ~weighted_init] continues a
   previous accumulation in place), so they are bit-identical however
   the trials were batched. *)

type tally = { t_trials : int; t_w : float; t_w2 : float }

let empty_tally = { t_trials = 0; t_w = 0.0; t_w2 = 0.0 }

let tally_add t w =
  { t_trials = t.t_trials + 1; t_w = t.t_w +. w; t_w2 = t.t_w2 +. (w *. w) }

type weighted = {
  wn : int;
  w_sum : float;
  w_sum2 : float;
  w_escape : tally;
  w_repair_fail_two_pass : tally;
  w_repair_fail_iterated : tally;
}

let empty_weighted =
  { wn = 0
  ; w_sum = 0.0
  ; w_sum2 = 0.0
  ; w_escape = empty_tally
  ; w_repair_fail_two_pass = empty_tally
  ; w_repair_fail_iterated = empty_tally
  }

type result = {
  config : config;
  trials_run : int;
  truncated : bool;
  resumed_trials : int;
  two_pass : histogram;
  iterated : histogram;
  rounds : (int * int) list;  (** (verify rounds, trial count), sorted *)
  escapes : failure list;
  divergences : failure list;
  tool_errors : tool_error list;
  observed_yield_two_pass : float;
  observed_yield_iterated : float;
  analytic_yield : float;
  weighted : weighted option;
}

let analytic_yield cfg =
  match cfg.repair with
  | Bira _ ->
      (* 2D repair: the row-only closed form does not apply, so the
         report embeds the deterministic seeded Monte-Carlo estimate
         with the exact cover predicate *)
      let g2 =
        Repairable.make2 ~rows:(Org.rows cfg.org) ~cols:(Org.cols cfg.org)
          ~spare_rows:cfg.org.Org.spares ~spare_cols:cfg.org.Org.spare_cols
      in
      (match cfg.mode with
      | Uniform n -> Repairable.p_repairable2 g2 n
      | Poisson mean -> Repairable.yield2_poisson g2 ~mean_defects:mean
      | Clustered { mean; alpha } ->
          Repairable.yield2 g2 ~mean_defects:mean ~alpha)
  | Row_tlb -> (
      let regular_rows = Org.rows cfg.org and spares = cfg.org.Org.spares in
      let g =
        if spares = 0 then Repairable.bare ~regular_rows
        else
          Repairable.make ~regular_rows ~spares ~logic_fraction:0.0
            ~growth_factor:1.0
      in
      match cfg.mode with
      | Uniform n -> Repairable.p_repairable g n
      | Poisson mean -> Repairable.yield_poisson g ~mean_defects:mean
      | Clustered { mean; alpha } ->
          Repairable.yield g ~mean_defects:mean ~alpha)

let failure_of_anomaly cfg trial anomaly =
  let f_kind, f_flow, f_detail =
    match anomaly with
    | Escape { flow; mismatches } ->
        let first =
          match mismatches with
          | m :: _ -> Format.asprintf "; first: %a" Sweep.pp_mismatch m
          | [] -> ""
        in
        ( "escape"
        , flow_name flow
        , Printf.sprintf "%d mismatching read(s)%s" (List.length mismatches)
            first )
    | Divergence { detail } -> ("divergence", "oracle", detail)
  in
  (match anomaly with
  | Escape _ -> Obs.incr "campaign.escapes"
  | Divergence _ -> Obs.incr "campaign.divergences");
  { f_trial = trial.t_index
  ; f_seed = trial.t_seed
  ; f_kind
  ; f_flow
  ; f_detail
  ; f_faults = trial.t_faults
  ; f_shrunk =
      Obs.span ~cat:"campaign" ~arg:("trial", trial.t_index) "shrink"
        (fun () -> shrink_anomaly cfg anomaly trial.t_faults)
  }

(* ------------------------------------------------------------------ *)
(* JSON rendering (also the checkpoint wire format) *)

let cell_json (c : Fault.cell) =
  J.Obj [ ("row", J.Int c.Fault.row); ("col", J.Int c.Fault.col) ]

let fault_json = function
  | Fault.Stuck_at (c, v) ->
      J.Obj
        [ ("class", J.String "SAF"); ("cell", cell_json c); ("value", J.Bool v) ]
  | Fault.Transition (c, up) ->
      J.Obj
        [ ("class", J.String "TF"); ("cell", cell_json c); ("rising", J.Bool up) ]
  | Fault.Stuck_open c ->
      J.Obj [ ("class", J.String "SOF"); ("cell", cell_json c) ]
  | Fault.Coupling_inversion { aggressor; victim } ->
      J.Obj
        [ ("class", J.String "CFin")
        ; ("aggressor", cell_json aggressor)
        ; ("victim", cell_json victim)
        ]
  | Fault.Coupling_idempotent { aggressor; rising; victim; forces } ->
      J.Obj
        [ ("class", J.String "CFid")
        ; ("aggressor", cell_json aggressor)
        ; ("rising", J.Bool rising)
        ; ("victim", cell_json victim)
        ; ("forces", J.Bool forces)
        ]
  | Fault.State_coupling { aggressor; when_state; victim; reads_as } ->
      J.Obj
        [ ("class", J.String "CFst")
        ; ("aggressor", cell_json aggressor)
        ; ("when_state", J.Bool when_state)
        ; ("victim", cell_json victim)
        ; ("reads_as", J.Bool reads_as)
        ]
  | Fault.Data_retention (c, v) ->
      J.Obj
        [ ("class", J.String "DRF")
        ; ("cell", cell_json c)
        ; ("decays_to", J.Bool v)
        ]

let mode_json = function
  | Uniform n -> J.Obj [ ("kind", J.String "uniform"); ("faults", J.Int n) ]
  | Poisson mean ->
      J.Obj [ ("kind", J.String "poisson"); ("mean", J.Float mean) ]
  | Clustered { mean; alpha } ->
      J.Obj
        [ ("kind", J.String "clustered")
        ; ("mean", J.Float mean)
        ; ("alpha", J.Float alpha)
        ]

let mix_json (m : Injection.mix) =
  J.Obj
    [ ("stuck_at", J.Float m.Injection.stuck_at)
    ; ("transition", J.Float m.Injection.transition)
    ; ("stuck_open", J.Float m.Injection.stuck_open)
    ; ("coupling_inversion", J.Float m.Injection.coupling_inversion)
    ; ("coupling_idempotent", J.Float m.Injection.coupling_idempotent)
    ; ("state_coupling", J.Float m.Injection.state_coupling)
    ; ("data_retention", J.Float m.Injection.data_retention)
    ]

let proposal_json (p : Proposal.t) =
  let count =
    match p.Proposal.count with
    | Proposal.Count_nominal -> J.Obj [ ("kind", J.String "nominal") ]
    | Proposal.Scaled { scale; shift } ->
        J.Obj
          [ ("kind", J.String "scaled")
          ; ("scale", J.Float scale)
          ; ("shift", J.Float shift)
          ]
    | Proposal.Stratified { nonzero } ->
        J.Obj
          [ ("kind", J.String "stratified"); ("nonzero", J.Float nonzero) ]
  in
  J.Obj
    [ ("count", count)
    ; ("mix", match p.Proposal.mix with None -> J.Null | Some m -> mix_json m)
    ]

let config_json cfg =
  J.Obj
    ([ ( "org"
       , J.Obj
           ([ ("words", J.Int cfg.org.Org.words)
            ; ("bpw", J.Int cfg.org.Org.bpw)
            ; ("bpc", J.Int cfg.org.Org.bpc)
            ; ("spares", J.Int cfg.org.Org.spares)
            ]
           (* like [proposal] below: the key appears only when the
              organization actually has spare columns, so every
              row-only config keeps its historical bytes *)
           @
           if cfg.org.Org.spare_cols > 0 then
             [ ("spare_cols", J.Int cfg.org.Org.spare_cols) ]
           else []) )
     ; ("march", J.String cfg.march.March.name)
     ; ("mix", mix_json cfg.mix)
     ; ("mode", mode_json cfg.mode)
     ]
    (* rendered only when armed: estimation-off configs keep their
       pre-proposal bytes, so reports and checkpoint compat strings
       from earlier versions stay valid *)
    @ (match cfg.proposal with
      | None -> []
      | Some p -> [ ("proposal", proposal_json p) ])
    @ (match cfg.repair with
      | Row_tlb -> []
      | r -> [ ("repair", J.String (repair_name r)) ])
    @ [ ("trials", J.Int cfg.trials)
      ; ("seed", J.Int cfg.seed)
      ; ( "max_seconds"
        , match cfg.max_seconds with None -> J.Null | Some s -> J.Float s )
      ; ("shrink", J.Bool cfg.shrink)
      ; ("max_rounds", J.Int cfg.max_rounds)
      ])

let histogram_json h =
  J.Obj
    [ ("passed_clean", J.Int h.passed_clean)
    ; ("repaired", J.Int h.repaired)
    ; ("too_many_faulty_rows", J.Int h.too_many_faulty_rows)
    ; ("fault_in_second_pass", J.Int h.fault_in_second_pass)
    ]

let failure_json f =
  J.Obj
    [ ("trial", J.Int f.f_trial)
    ; ("seed", J.Int f.f_seed)
    ; ("kind", J.String f.f_kind)
    ; ("flow", J.String f.f_flow)
    ; ("detail", J.String f.f_detail)
    ; ("faults", J.List (List.map fault_json f.f_faults))
    ; ("shrunk", J.List (List.map fault_json f.f_shrunk))
    ]

let tool_error_json e =
  J.Obj
    [ ("trial", J.Int e.te_trial)
    ; ("seed", J.Int e.te_seed)
    ; ("error", J.String e.te_error)
    ]

(* ------------------------------------------------------------------ *)
(* JSON parsing (checkpoint resume)

   Exact inverses of the renderers above: a record that round-trips
   through parse + re-render yields the same bytes, which is what makes
   a resumed report byte-identical to an uninterrupted run.  Parsers
   are total — any unexpected shape is [None], never an exception — so
   a corrupt checkpoint degrades to recomputation. *)

let ( let* ) = Option.bind

let field_int k j =
  match J.member k j with Some (J.Int i) -> Some i | _ -> None

let field_str k j =
  match J.member k j with Some (J.String s) -> Some s | _ -> None

let field_bool k j =
  match J.member k j with Some (J.Bool b) -> Some b | _ -> None

let field_list k j =
  match J.member k j with Some (J.List l) -> Some l | _ -> None

let all_opt f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Some (y :: acc))
    l (Some [])

let cell_of_json j =
  let* row = field_int "row" j in
  let* col = field_int "col" j in
  Some { Fault.row; col }

let field_cell k j =
  let* c = J.member k j in
  cell_of_json c

let fault_of_json j =
  let* cls = field_str "class" j in
  match cls with
  | "SAF" ->
      let* c = field_cell "cell" j in
      let* v = field_bool "value" j in
      Some (Fault.Stuck_at (c, v))
  | "TF" ->
      let* c = field_cell "cell" j in
      let* up = field_bool "rising" j in
      Some (Fault.Transition (c, up))
  | "SOF" ->
      let* c = field_cell "cell" j in
      Some (Fault.Stuck_open c)
  | "CFin" ->
      let* aggressor = field_cell "aggressor" j in
      let* victim = field_cell "victim" j in
      Some (Fault.Coupling_inversion { aggressor; victim })
  | "CFid" ->
      let* aggressor = field_cell "aggressor" j in
      let* rising = field_bool "rising" j in
      let* victim = field_cell "victim" j in
      let* forces = field_bool "forces" j in
      Some (Fault.Coupling_idempotent { aggressor; rising; victim; forces })
  | "CFst" ->
      let* aggressor = field_cell "aggressor" j in
      let* when_state = field_bool "when_state" j in
      let* victim = field_cell "victim" j in
      let* reads_as = field_bool "reads_as" j in
      Some (Fault.State_coupling { aggressor; when_state; victim; reads_as })
  | "DRF" ->
      let* c = field_cell "cell" j in
      let* v = field_bool "decays_to" j in
      Some (Fault.Data_retention (c, v))
  | _ -> None

let failure_of_json j =
  let* f_trial = field_int "trial" j in
  let* f_seed = field_int "seed" j in
  let* f_kind = field_str "kind" j in
  let* f_flow = field_str "flow" j in
  let* f_detail = field_str "detail" j in
  let* faults = field_list "faults" j in
  let* shrunk = field_list "shrunk" j in
  let* f_faults = all_opt fault_of_json faults in
  let* f_shrunk = all_opt fault_of_json shrunk in
  Some { f_trial; f_seed; f_kind; f_flow; f_detail; f_faults; f_shrunk }

(* ------------------------------------------------------------------ *)
(* trial records: the unit of aggregation and checkpointing

   A record is everything the final report consumes from one trial —
   outcome classes, repair rounds, failure records — or the recorded
   tool error when the trial itself crashed.  [compute_record] is a
   deterministic function of (config, index), so records parsed back
   from a checkpoint are indistinguishable from recomputed ones. *)

type trial_record = {
  rc_index : int;
  rc_seed : int;
  rc_body : rc_body;
}

and rc_body =
  | Rc_ok of {
      rc_two_pass : string;
      rc_iterated : string;
      rc_rounds : int;
      rc_alloc : (int list * int list) option;
          (** BIRA spare allocation (rows, cols); [None] for the TLB
              flow and for unrepaired trials *)
      rc_failures : failure list;  (** per-trial, anomaly order *)
    }
  | Rc_error of string

let record_json r =
  let common = [ ("trial", J.Int r.rc_index); ("seed", J.Int r.rc_seed) ] in
  match r.rc_body with
  | Rc_ok o ->
      J.Obj
        (common
        @ [ ("two_pass", J.String o.rc_two_pass)
          ; ("iterated", J.String o.rc_iterated)
          ; ("rounds", J.Int o.rc_rounds)
          ]
        (* only BIRA trials carry an allocation, so TLB records keep
           their historical bytes *)
        @ (match o.rc_alloc with
          | None -> []
          | Some (rows, cols) ->
              [ ( "alloc"
                , J.Obj
                    [ ("rows", J.List (List.map (fun r -> J.Int r) rows))
                    ; ("cols", J.List (List.map (fun c -> J.Int c) cols))
                    ] )
              ])
        @ [ ("failures", J.List (List.map failure_json o.rc_failures)) ])
  | Rc_error e -> J.Obj (common @ [ ("error", J.String e) ])

let record_of_json j =
  let* rc_index = field_int "trial" j in
  let* rc_seed = field_int "seed" j in
  match field_str "error" j with
  | Some e -> Some { rc_index; rc_seed; rc_body = Rc_error e }
  | None ->
      let* rc_two_pass = field_str "two_pass" j in
      let* rc_iterated = field_str "iterated" j in
      if not (class_known rc_two_pass && class_known rc_iterated) then None
      else
        let* rc_rounds = field_int "rounds" j in
        let* rc_alloc =
          match J.member "alloc" j with
          | None -> Some None
          | Some a ->
              let int_of = function J.Int i -> Some i | _ -> None in
              let* rl = field_list "rows" a in
              let* cl = field_list "cols" a in
              let* rows = all_opt int_of rl in
              let* cols = all_opt int_of cl in
              Some (Some (rows, cols))
        in
        let* failures = field_list "failures" j in
        let* rc_failures = all_opt failure_of_json failures in
        Some
          { rc_index
          ; rc_seed
          ; rc_body =
              Rc_ok
                { rc_two_pass; rc_iterated; rc_rounds; rc_alloc; rc_failures }
          }

let compute_record cfg ~index =
  let trial = run_trial cfg ~index in
  let rc_failures =
    List.map (fun a -> failure_of_anomaly cfg trial a) trial.t_anomalies
  in
  { rc_index = index
  ; rc_seed = trial.t_seed
  ; rc_body =
      Rc_ok
        { rc_two_pass = outcome_class trial.t_verdicts.controller
        ; rc_iterated = outcome_class trial.t_verdicts.iterated
        ; rc_rounds = trial.t_verdicts.rounds
        ; rc_alloc = trial.t_verdicts.alloc
        ; rc_failures
        }
  }

(* A crashed trial becomes a recorded outcome, not a crash of the
   campaign.  Only the exception's rendering enters the record (the
   backtrace depends on build flags and would break cross-jobs
   byte-identity); the full backtrace is still available to the caller
   through the pool's structured failure if it wants to log it. *)
let record_of_pool_failure cfg ~index (f : Pool.failure) =
  { rc_index = index
  ; rc_seed = trial_seed cfg index
  ; rc_body = Rc_error (Printexc.to_string f.Pool.f_exn)
  }

(* ------------------------------------------------------------------ *)
(* lane-sliced batch execution (PPSFP over trials)

   A batch packs [len] consecutive trials into the bit positions of a
   [Lanes] store and drives all of them through the flow at once.  The
   lane engine only has to answer one question per lane: was the whole
   flow clean?  A clean lane's record is forced — the controller and
   the reference see no failure (outcomes equal, both TLBs empty, the
   remap is the identity), the iterated flow verifies on round 1, and
   both escape sweeps are silent — so it is emitted directly, while
   every dirty lane is recomputed on the scalar engine, whose records
   (including shrinking and failure detail) are byte-identical to an
   unbatched run's by construction.

   The schedule reproduces the state each scalar flow sweeps:
   - pass 1 from power-up state = controller pass 1 / [Engine.run];
   - pass 2 on pass-1 state     = controller pass 2 (no clear; the
     clean lane's remap is the identity);
   - sweep A                    = the two-pass flow's escape sweep;
   - pass 3 from power-up state = the iterated flow's verify round
     ([Engine.run] after an identity remap);
   - sweep B                    = the iterated flow's escape sweep. *)

let max_lanes = Bisram_sram.Word.max_width

let clean_body =
  Rc_ok
    { rc_two_pass = "passed_clean"
    ; rc_iterated = "passed_clean"
    ; rc_rounds = 1
    ; rc_alloc = None
    ; rc_failures = []
    }

let popcount m =
  let n = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let compute_batch cfg ~start ~len =
  Obs.span ~cat:"campaign" ~arg:("batch", start) "lane-batch" (fun () ->
      let lanes = Bisram_sram.Lanes.create cfg.org ~lanes:len in
      let fault_counts =
        Array.init len (fun l ->
            let faults =
              draw_faults cfg (rng_of_seed (trial_seed cfg (start + l)))
            in
            Bisram_sram.Lanes.arm lanes ~lane:l faults;
            List.length faults)
      in
      Bisram_sram.Lanes.clear lanes;
      let bgs = backgrounds cfg in
      let all = Bisram_sram.Lanes.all_mask lanes in
      let march = cfg.march in
      let run_pass ?clear () =
        Bisram_bist.Lane_engine.run_pass ?clear lanes march ~backgrounds:bgs
      in
      let dirty = ref (run_pass ()) in
      Pool.check_deadline ();
      if !dirty <> all then begin
        dirty := !dirty lor run_pass ~clear:false ();
        if !dirty <> all then dirty := !dirty lor Sweep.run_lanes lanes;
        Pool.check_deadline ();
        if !dirty <> all then begin
          dirty := !dirty lor run_pass ();
          dirty := !dirty lor Sweep.run_lanes lanes
        end
      end;
      let d = !dirty in
      Obs.incr "campaign.lane_batches";
      Obs.add "campaign.lane_occupancy_filled" len;
      Obs.add "campaign.lane_occupancy_width" len;
      Obs.add "campaign.lane_fallbacks" (popcount (d land all));
      Array.init len (fun l ->
          let index = start + l in
          if d land (1 lsl l) <> 0 then compute_record cfg ~index
          else begin
            Obs.incr "campaign.trials";
            Obs.incr "campaign.lane_clean_trials";
            Obs.add "campaign.faults_injected" fault_counts.(l);
            Obs.observe "campaign.faults_per_trial" fault_counts.(l);
            { rc_index = index
            ; rc_seed = trial_seed cfg index
            ; rc_body = clean_body
            }
          end))

(* ------------------------------------------------------------------ *)
(* checkpoints *)

type checkpoint = {
  ck_path : string;
  ck_every : int;
  ck_resume : bool;
}

let checkpoint ~path ?(every = 0) ?(resume = false) () =
  if every < 0 then invalid_arg "Campaign.checkpoint: every must be >= 0";
  { ck_path = path; ck_every = every; ck_resume = resume }

let checkpoint_schema = "bisram-campaign-checkpoint/1"

(* The trial count and wall-clock budget may legitimately differ
   between the interrupted and the resuming invocation (a resume
   completes what a budget or kill cut short); everything that shapes a
   trial's outcome must match exactly. *)
let compat_json cfg = config_json { cfg with trials = 0; max_seconds = None }

let checkpoint_string cfg records =
  J.to_string
    (J.Obj
       [ ("schema", J.String checkpoint_schema)
       ; ("config", compat_json cfg)
       ; ("records", J.List (List.map record_json records))
       ])

(* Atomic temp + rename in the checkpoint's own directory: a kill at
   any instant leaves either the previous complete snapshot or the new
   one, never a torn file.  Write failures degrade to "no new
   checkpoint" — the campaign itself must never die to checkpointing. *)
let write_checkpoint cfg path records =
  match
    let dir = Filename.dirname path in
    let tmp, oc = Filename.open_temp_file ~temp_dir:dir ".ckpt-" ".tmp" in
    (try output_string oc (checkpoint_string cfg records)
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    close_out oc;
    Sys.rename tmp path
  with
  | () ->
      Obs.incr "campaign.checkpoints";
      Events.emit ~domain:"campaign" "checkpoint.write"
        [ ("path", J.String path)
        ; ("records", J.Int (List.length records))
        ]
  | exception Sys_error e ->
      Obs.incr "campaign.checkpoint_write_failed";
      Events.emit ~level:Events.Warn ~domain:"campaign"
        "checkpoint.write_failed"
        [ ("path", J.String path); ("error", J.String e) ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Load the maximal valid contiguous prefix of a checkpoint.  Any
   defect — unreadable file, parse error, schema or config mismatch, a
   record that is out of place or carries the wrong derived seed —
   degrades to a shorter prefix (or a cold start), never to an error:
   resuming from a damaged checkpoint just recomputes more. *)
let load_checkpoint cfg path =
  let reject () =
    Obs.incr "campaign.checkpoint_rejected";
    [||]
  in
  if not (Sys.file_exists path) then [||]
  else
    match read_file path with
    | exception Sys_error _ -> reject ()
    | text -> (
        match J.of_string text with
        | Error _ -> reject ()
        | Ok doc -> (
            let schema_ok =
              match J.member "schema" doc with
              | Some (J.String s) -> String.equal s checkpoint_schema
              | _ -> false
            in
            let config_ok =
              match J.member "config" doc with
              | Some c -> String.equal (J.to_string c) (J.to_string (compat_json cfg))
              | None -> false
            in
            if not (schema_ok && config_ok) then reject ()
            else
              match J.member "records" doc with
              | Some (J.List l) ->
                  let prefix = ref [] in
                  let expect = ref 0 in
                  let ok = ref true in
                  List.iter
                    (fun rj ->
                      if !ok then
                        match record_of_json rj with
                        | Some r
                          when r.rc_index = !expect
                               && r.rc_seed = trial_seed cfg r.rc_index ->
                            prefix := r :: !prefix;
                            incr expect
                        | _ -> ok := false)
                    l;
                  Array.of_list (List.rev !prefix)
              | _ -> reject ()))

(* ------------------------------------------------------------------ *)
(* the campaign run *)

type progress = {
  p_done : int;
  p_total : int;
  p_escapes : int;
  p_divergences : int;
  p_tool_errors : int;
  p_clean : int;
}

let run ?now ?(jobs = 1) ?(lanes = 1) ?(should_stop = fun () -> false)
    ?checkpoint ?trial_deadline ?(offset = 0) ?weighted_init ?on_progress cfg =
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
  if lanes < 1 || lanes > max_lanes then
    invalid_arg
      (Printf.sprintf "Campaign.run: lanes must be in 1..%d" max_lanes);
  if offset < 0 then invalid_arg "Campaign.run: offset must be >= 0";
  if offset > 0 && Option.is_some checkpoint then
    invalid_arg
      "Campaign.run: checkpoints cover trials from 0, so they require \
       offset = 0";
  let now =
    match now with Some f -> f | None -> Bisram_parallel.Clock.now
  in
  let start = now () in
  let caller = Domain.self () in
  let over_budget () =
    (* only the calling domain consults [now]; helper domains see the
       pool's shared stop flag instead, so an impure [now] (e.g. a test
       stub advancing a ref) never races across domains.  The caller's
       [should_stop] (the SIGINT drain flag in the CLI) must be safe to
       poll from any domain — an [Atomic.get] is. *)
    should_stop ()
    || (Domain.self () = caller
       && (match cfg.max_seconds with
          | None -> false
          | Some s -> now () -. start >= s))
  in
  (* resume: the checkpoint contributes a contiguous prefix of already
     computed records; those trial indices are served from memory and
     everything else is recomputed.  Records are deterministic per
     (config, index), so the merged report cannot depend on which side
     a trial came from. *)
  let resumed =
    match checkpoint with
    | Some ck when ck.ck_resume -> load_checkpoint cfg ck.ck_path
    | _ -> [||]
  in
  let nresumed = min (Array.length resumed) cfg.trials in
  if Obs.enabled () && nresumed > 0 then
    Obs.add "campaign.resumed_trials" nresumed;
  (* the one event whose payload names the execution environment
     (jobs/lanes): everything else in the stream is a pure function of
     the work, so jobs-invariance checks drop run.start (see DESIGN.md
     §14) *)
  Events.emit ~domain:"campaign" "run.start"
    [ ("trials", J.Int cfg.trials)
    ; ("offset", J.Int offset)
    ; ("seed", J.Int cfg.seed)
    ; ("jobs", J.Int jobs)
    ; ("lanes", J.Int lanes)
    ; ("resumed", J.Int nresumed)
    ];
  (* Lane-batch decomposition: one pool item covers [lanes] consecutive
     trials (full batches only — the ragged tail degrades to one item
     per trial, keeping the unbatched chaos/retry/checkpoint
     granularity there).  With [lanes = 1] this is exactly the old
     one-item-per-trial scheduler. *)
  (* [offset] shifts the whole window: this call computes the trials
     [offset .. offset + trials - 1] with their global derived seeds,
     which is what lets an adaptive driver grow a campaign batch by
     batch and still match a single larger run trial for trial. *)
  let ranges =
    Array.map
      (fun (s, l) -> (s + offset, l))
      (Pool.batch_ranges ~items:cfg.trials ~width:lanes)
  in
  let n_units = Array.length ranges in
  (* Every trial already owns its derived seed, so trials are
     independent and can run on any worker.  Shrinking runs inside the
     worker too (it dominates the cost of a failing trial) and is a
     deterministic function of the trial.  The merge below walks the
     positional results in trial order, which keeps the report
     byte-identical at every job count and lane width (budgeted runs
     excepted: where the budget fires depends on timing at any job
     count). *)
  let work unit =
    let start, len = ranges.(unit) in
    if start + len <= nresumed then
      (* fully resumed: served from memory, no chaos consulted *)
      Array.init len (fun l -> resumed.(start + l))
    else begin
      (match Chaos.kill_at_trial () with
      | Some k when k >= max start nresumed && k < start + len ->
          Chaos.kill_now ()
      | _ -> ());
      if
        Chaos.job_fails
          ~key:(Printf.sprintf "%d.%d" start (Pool.current_attempt ()))
      then begin
        (* keyed on (trial, attempt), so the event payload is as
           deterministic as the injection itself *)
        Events.emit ~level:Events.Warn ~domain:"chaos" "chaos.inject"
          [ ("trial", J.Int start)
          ; ("attempt", J.Int (Pool.current_attempt ()))
          ];
        raise
          (Pool.Transient
             (Chaos.Injected
                (Printf.sprintf "chaos: injected transient fault (trial %d)"
                   start)))
      end;
      if len > 1 && start >= nresumed then compute_batch cfg ~start ~len
      else
        (* single-trial unit, or a batch straddling the resume
           boundary: scalar per trial (resumed indices from memory) *)
        Array.init len (fun l ->
            let index = start + l in
            if index < nresumed then resumed.(index)
            else compute_record cfg ~index)
    end
  in
  (* per-domain utilization lands in worker-indexed counters; the probe
     runs on each worker's own domain, so it writes that domain's
     telemetry shard without contention *)
  let probe =
    if not (Obs.enabled ()) then None
    else
      Some
        (fun ~worker ~busy_ns ~total_ns ~chunks ~items ->
          let p = Printf.sprintf "pool.worker%d." worker in
          Obs.add (p ^ "busy_ns") (Int64.to_int busy_ns);
          Obs.add (p ^ "idle_ns")
            (Int64.to_int (Int64.sub total_ns busy_ns));
          Obs.add (p ^ "chunks") chunks;
          Obs.add (p ^ "items") items)
  in
  (* checkpoint writer: completions stream into a mutex-guarded table
     on the completing worker's own domain; whenever the contiguous
     prefix has grown by [ck_every] the whole prefix is snapshotted
     atomically.  Everything under the mutex, so no cross-domain read
     of the pool's result slots is ever needed. *)
  let ck_write =
    match checkpoint with
    | Some ck when ck.ck_every > 0 -> Some ck
    | _ -> None
  in
  let ck_mutex = Mutex.create () in
  let ck_table : (int, trial_record) Hashtbl.t =
    Hashtbl.create (max 16 (2 * nresumed))
  in
  let ck_prefix = ref 0 in
  let ck_last_written = ref nresumed in
  Array.iteri
    (fun i r -> if i < nresumed then Hashtbl.replace ck_table i r)
    resumed;
  ck_prefix := nresumed;
  (* a unit whose computation failed yields one error record per
     contained trial — exactly what the per-trial scheduler recorded *)
  let records_of_job unit (r : trial_record array Pool.job_result) =
    match r.Pool.outcome with
    | Ok arr -> arr
    | Error f ->
        let start, len = ranges.(unit) in
        Array.init len (fun l ->
            record_of_pool_failure cfg ~index:(start + l) f)
  in
  let ck_hook =
    match ck_write with
    | None -> None
    | Some ck ->
        Some
          (fun unit r ->
            let rcs = records_of_job unit r in
            Mutex.lock ck_mutex;
            Array.iter (fun rc -> Hashtbl.replace ck_table rc.rc_index rc) rcs;
            while Hashtbl.mem ck_table !ck_prefix do
              incr ck_prefix
            done;
            if !ck_prefix - !ck_last_written >= ck.ck_every then begin
              let records =
                List.init !ck_prefix (fun i -> Hashtbl.find ck_table i)
              in
              write_checkpoint cfg ck.ck_path records;
              ck_last_written := !ck_prefix
            end;
            Mutex.unlock ck_mutex)
  in
  (* live progress: cumulative counts maintained under their own mutex
     and pushed to the caller from the completing worker's domain.
     Purely write-only — the report below re-aggregates from the pool's
     result slots and never reads these refs. *)
  let prog_hook =
    match on_progress with
    | None -> None
    | Some f ->
        let pm = Mutex.create () in
        let pdone = ref 0
        and pesc = ref 0
        and pdiv = ref 0
        and perr = ref 0
        and pclean = ref 0 in
        Some
          (fun unit r ->
            let rcs = records_of_job unit r in
            Mutex.lock pm;
            Array.iter
              (fun rc ->
                match rc.rc_body with
                | Rc_error _ -> incr perr
                | Rc_ok o ->
                    if rc.rc_body = clean_body then incr pclean;
                    List.iter
                      (fun fl ->
                        if String.equal fl.f_kind "escape" then incr pesc
                        else incr pdiv)
                      o.rc_failures)
              rcs;
            pdone := !pdone + Array.length rcs;
            let snap =
              { p_done = !pdone
              ; p_total = cfg.trials
              ; p_escapes = !pesc
              ; p_divergences = !pdiv
              ; p_tool_errors = !perr
              ; p_clean = !pclean
              }
            in
            Mutex.unlock pm;
            f snap)
  in
  let on_result =
    match (ck_hook, prog_hook) with
    | None, None -> None
    | Some h, None | None, Some h -> Some h
    | Some a, Some b ->
        Some
          (fun unit r ->
            a unit r;
            b unit r)
  in
  (* retry observability: the pool calls this on the raising worker
     right before a transient re-attempt *)
  let on_retry =
    if not (Obs.enabled () || Events.enabled ()) then None
    else
      Some
        (fun unit ~attempt e ->
          Obs.incr "pool.retry_attempts";
          if Events.would_log Events.Warn then begin
            let start, len = ranges.(unit) in
            Events.emit ~level:Events.Warn ~domain:"pool" "pool.retry"
              [ ("trial_start", J.Int start)
              ; ("len", J.Int len)
              ; ("attempt", J.Int attempt)
              ; ("error", J.String (Printexc.to_string e))
              ]
          end)
  in
  let deadline_ns =
    Option.map (fun s -> Int64.of_float (s *. 1e9)) trial_deadline
  in
  let completed =
    Pool.map_result ~jobs ~should_stop:over_budget ?probe ?deadline_ns
      ?on_result ?on_retry n_units work
  in
  (* final snapshot: a graceful drain (budget or SIGINT) leaves the
     freshest contiguous prefix on disk for the next --resume *)
  (match ck_write with
  | Some ck when !ck_prefix > !ck_last_written ->
      write_checkpoint cfg ck.ck_path
        (List.init !ck_prefix (fun i -> Hashtbl.find ck_table i))
  | _ -> ());
  (* Under a budget, workers past the one that tripped the stop may have
     completed units beyond the first unfinished one, leaving holes.
     Aggregate only the maximal contiguous prefix of units so a
     truncated report means the same thing at every job count: exactly
     the trials [0 .. trials_run - 1], as the sequential loop would
     produce. *)
  let units_run =
    let u = ref 0 in
    while !u < n_units && Option.is_some completed.(!u) do
      incr u
    done;
    !u
  in
  let trials_run =
    if units_run = n_units then cfg.trials
    else fst ranges.(units_run) - offset
  in
  if Obs.enabled () || Events.enabled () then begin
    let retries = ref 0 in
    Array.iteri
      (fun u r ->
        match r with
        | Some (r : trial_record array Pool.job_result) ->
            retries := !retries + (r.Pool.attempts - 1);
            (match r.Pool.outcome with
            | Ok _ -> ()
            | Error f ->
                let start, len = ranges.(u) in
                let deadline = f.Pool.f_exn = Pool.Deadline_exceeded in
                if deadline then Obs.incr "pool.deadline_exceeded"
                else if f.Pool.f_transient then
                  Obs.incr "pool.retry_exhausted";
                if Events.would_log Events.Warn then
                  Events.emit ~level:Events.Warn ~domain:"pool"
                    (if deadline then "pool.deadline_kill"
                     else "pool.job_failed")
                    [ ("trial_start", J.Int start)
                    ; ("len", J.Int len)
                    ; ("attempts", J.Int r.Pool.attempts)
                    ; ("transient", J.Bool f.Pool.f_transient)
                    ; ("error", J.String (Printexc.to_string f.Pool.f_exn))
                    ])
        | None -> ())
      completed;
    if !retries > 0 then Obs.add "pool.retries" !retries
  end;
  let two_pass = ref empty_histogram in
  let iterated = ref empty_histogram in
  let rounds : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let escapes = ref [] in
  let divergences = ref [] in
  let tool_errors = ref [] in
  (* importance-weighted tallies: single-threaded, strict trial order,
     continuing [weighted_init]'s partial sums when the caller is
     growing a campaign batch by batch — so the floats come out
     bit-identical to one big run's regardless of batching *)
  let weighted_acc =
    ref (match weighted_init with Some w -> w | None -> empty_weighted)
  in
  let repair_failed = function
    | "too_many_faulty_rows" | "fault_in_second_pass" -> true
    | _ -> false
  in
  let note_weight rc =
    if Option.is_some cfg.proposal then begin
      let w = trial_weight cfg ~index:rc.rc_index in
      let acc = !weighted_acc in
      let acc =
        { acc with
          wn = acc.wn + 1
        ; w_sum = acc.w_sum +. w
        ; w_sum2 = acc.w_sum2 +. (w *. w)
        }
      in
      let acc =
        match rc.rc_body with
        | Rc_error _ -> acc (* a crashed trial observed no failure *)
        | Rc_ok o ->
            let acc =
              if
                List.exists
                  (fun f -> String.equal f.f_kind "escape")
                  o.rc_failures
              then { acc with w_escape = tally_add acc.w_escape w }
              else acc
            in
            let acc =
              if repair_failed o.rc_two_pass then
                { acc with
                  w_repair_fail_two_pass =
                    tally_add acc.w_repair_fail_two_pass w
                }
              else acc
            in
            if repair_failed o.rc_iterated then
              { acc with
                w_repair_fail_iterated = tally_add acc.w_repair_fail_iterated w
              }
            else acc
      in
      weighted_acc := acc
    end
  in
  for u = 0 to units_run - 1 do
    match completed.(u) with
    | None -> assert false (* inside the contiguous prefix *)
    | Some job ->
        Array.iter
          (fun rc ->
            note_weight rc;
            match rc.rc_body with
            | Rc_ok o ->
                two_pass := count_class !two_pass o.rc_two_pass;
                iterated := count_class !iterated o.rc_iterated;
                Hashtbl.replace rounds o.rc_rounds
                  (1
                  + Option.value ~default:0
                      (Hashtbl.find_opt rounds o.rc_rounds));
                (* allocation decisions, like the anomaly sub-stream
                   below, are emitted here in strict trial order on the
                   calling domain — jobs/lanes-invariant *)
                (match o.rc_alloc with
                | Some (arows, acols) when Events.would_log Events.Info ->
                    Events.emit ~domain:"campaign" "trial.bira_alloc"
                      [ ("trial", J.Int rc.rc_index)
                      ; ("seed", J.Int rc.rc_seed)
                      ; ("rows", J.List (List.map (fun r -> J.Int r) arows))
                      ; ("cols", J.List (List.map (fun c -> J.Int c) acols))
                      ]
                | _ -> ());
                List.iter
                  (fun f ->
                    if String.equal f.f_kind "escape" then
                      escapes := f :: !escapes
                    else divergences := f :: !divergences;
                    (* emitted here, in strict trial order on the
                       calling domain, so the anomaly sub-stream is
                       jobs-invariant envelope aside *)
                    if Events.would_log Events.Info then
                      Events.emit ~domain:"campaign" ("trial." ^ f.f_kind)
                        [ ("trial", J.Int f.f_trial)
                        ; ("seed", J.Int f.f_seed)
                        ; ("flow", J.String f.f_flow)
                        ; ("detail", J.String f.f_detail)
                        ])
                  o.rc_failures
            | Rc_error e ->
                Obs.incr "campaign.tool_errors";
                if Events.would_log Events.Warn then
                  Events.emit ~level:Events.Warn ~domain:"campaign"
                    "trial.tool_error"
                    [ ("trial", J.Int rc.rc_index)
                    ; ("seed", J.Int rc.rc_seed)
                    ; ("error", J.String e)
                    ];
                tool_errors :=
                  { te_trial = rc.rc_index
                  ; te_seed = rc.rc_seed
                  ; te_error = e
                  }
                  :: !tool_errors)
          (records_of_job u job)
  done;
  let frac h =
    if trials_run = 0 then 0.0
    else float_of_int (h.passed_clean + h.repaired) /. float_of_int trials_run
  in
  Events.emit ~domain:"campaign" "run.end"
    [ ("trials_run", J.Int trials_run)
    ; ("truncated", J.Bool (trials_run < cfg.trials))
    ; ("escapes", J.Int (List.length !escapes))
    ; ("divergences", J.Int (List.length !divergences))
    ; ("tool_errors", J.Int (List.length !tool_errors))
    ];
  { config = cfg
  ; trials_run
  ; truncated = trials_run < cfg.trials
  ; resumed_trials = nresumed
  ; two_pass = !two_pass
  ; iterated = !iterated
  ; rounds =
      Hashtbl.fold (fun r c acc -> (r, c) :: acc) rounds []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  ; escapes = List.rev !escapes
  ; divergences = List.rev !divergences
  ; tool_errors = List.rev !tool_errors
  ; observed_yield_two_pass = frac !two_pass
  ; observed_yield_iterated = frac !iterated
  ; analytic_yield = analytic_yield cfg
  ; weighted =
      (match cfg.proposal with None -> None | Some _ -> Some !weighted_acc)
  }

(* ------------------------------------------------------------------ *)
(* merging windowed runs *)

(* Merge the results of consecutive [run ~offset] windows over the same
   base configuration into what one big run over the union would have
   produced.  Integer tallies add exactly and failure lists concatenate
   in trial order; the weighted float sums are taken from the last
   window, which already holds the running totals (the adaptive driver
   threads them through [weighted_init]).  Together these make the
   merged report byte-identical to the single-run report — the property
   the estimator's adaptive mode leans on. *)
let merge_results = function
  | [] -> invalid_arg "Campaign.merge_results: empty result list"
  | [ r ] -> r
  | first :: _ as rs ->
      let compat r = J.to_string (compat_json r.config) in
      List.iter
        (fun r ->
          if not (String.equal (compat r) (compat first)) then
            invalid_arg "Campaign.merge_results: incompatible configurations")
        rs;
      let add_h a b =
        { passed_clean = a.passed_clean + b.passed_clean
        ; repaired = a.repaired + b.repaired
        ; too_many_faulty_rows = a.too_many_faulty_rows + b.too_many_faulty_rows
        ; fault_in_second_pass = a.fault_in_second_pass + b.fault_in_second_pass
        }
      in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      let trials = sum (fun r -> r.config.trials) in
      let trials_run = sum (fun r -> r.trials_run) in
      let rounds : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun r ->
          List.iter
            (fun (rd, c) ->
              Hashtbl.replace rounds rd
                (c + Option.value ~default:0 (Hashtbl.find_opt rounds rd)))
            r.rounds)
        rs;
      let two_pass = List.fold_left (fun a r -> add_h a r.two_pass)
          empty_histogram rs
      in
      let iterated = List.fold_left (fun a r -> add_h a r.iterated)
          empty_histogram rs
      in
      let frac h =
        if trials_run = 0 then 0.0
        else
          float_of_int (h.passed_clean + h.repaired) /. float_of_int trials_run
      in
      let last = List.nth rs (List.length rs - 1) in
      { config = { first.config with trials }
      ; trials_run
      ; truncated = trials_run < trials
      ; resumed_trials = sum (fun r -> r.resumed_trials)
      ; two_pass
      ; iterated
      ; rounds =
          Hashtbl.fold (fun r c acc -> (r, c) :: acc) rounds []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      ; escapes = List.concat_map (fun r -> r.escapes) rs
      ; divergences = List.concat_map (fun r -> r.divergences) rs
      ; tool_errors = List.concat_map (fun r -> r.tool_errors) rs
      ; observed_yield_two_pass = frac two_pass
      ; observed_yield_iterated = frac iterated
      ; analytic_yield = first.analytic_yield
      ; weighted = last.weighted
      }

(* ------------------------------------------------------------------ *)
(* JSON report *)

let to_json r =
  J.Obj
    [ ("schema", J.String "bisram-campaign/2")
    ; ("config", config_json r.config)
    ; ("trials_run", J.Int r.trials_run)
    ; ("truncated", J.Bool r.truncated)
    ; ( "outcomes"
      , J.Obj
          [ ("two_pass", histogram_json r.two_pass)
          ; ("iterated", histogram_json r.iterated)
          ] )
    ; ( "repair_rounds"
      , J.List
          (List.map
             (fun (rounds, count) ->
               J.Obj [ ("rounds", J.Int rounds); ("count", J.Int count) ])
             r.rounds) )
    ; ("escapes", J.List (List.map failure_json r.escapes))
    ; ("divergences", J.List (List.map failure_json r.divergences))
    ; ("tool_errors", J.List (List.map tool_error_json r.tool_errors))
    ; ( "yield"
      , J.Obj
          [ ("observed_two_pass", J.Float r.observed_yield_two_pass)
          ; ("observed_iterated", J.Float r.observed_yield_iterated)
          ; ("analytic", J.Float r.analytic_yield)
          ] )
    ]

let json_string r = J.to_string (to_json r)
let pretty_json_string r = J.to_pretty_string (to_json r)

(* ------------------------------------------------------------------ *)
(* human-readable trial report (the --replay output) *)

let pp_anomaly ppf = function
  | Escape { flow; mismatches } ->
      Format.fprintf ppf "ESCAPE (%s flow): %d mismatching read(s)"
        (flow_name flow) (List.length mismatches);
      List.iteri
        (fun i m ->
          if i < 8 then Format.fprintf ppf "@.    %a" Sweep.pp_mismatch m)
        mismatches
  | Divergence { detail } -> Format.fprintf ppf "DIVERGENCE: %s" detail

let pp_trial ppf t =
  Format.fprintf ppf "trial seed %d: %d fault(s)@." t.t_seed
    (List.length t.t_faults);
  List.iter (fun f -> Format.fprintf ppf "  %a@." Fault.pp f) t.t_faults;
  let v = t.t_verdicts in
  Format.fprintf ppf "controller: %a (%d cycles)@." Repair.pp_outcome
    v.controller v.cycles;
  Format.fprintf ppf "reference : %a@." Repair.pp_outcome v.reference;
  Format.fprintf ppf "iterated  : %a (%d round(s))@." Repair.pp_outcome
    v.iterated v.rounds;
  match t.t_anomalies with
  | [] -> Format.fprintf ppf "no escapes, no divergences@."
  | l -> List.iter (fun a -> Format.fprintf ppf "%a@." pp_anomaly a) l
