module Clock = Bisram_parallel.Clock

type t = {
  mu : Mutex.t;
  total : int option;
  status_file : string option;
  to_stderr : bool;
  min_interval_ns : int64;
  label : string;
  show_anomalies : bool;
  t0_ns : int64;
  mutable last_render_ns : int64;
  mutable done_ : int;
  mutable escapes : int;
  mutable divergences : int;
  mutable tool_errors : int;
  mutable clean : int;
  mutable ci_rel_half_width : float option;
  mutable warned_status : bool;
  mutable line_width : int;  (* widest stderr line so far, for erasing *)
}

let create ?total ?status_file ?(to_stderr = false) ?(min_interval_s = 0.5)
    ?(label = "trials") ?(show_anomalies = true) () =
  { mu = Mutex.create ()
  ; total
  ; status_file
  ; to_stderr
  ; min_interval_ns = Int64.of_float (min_interval_s *. 1e9)
  ; label
  ; show_anomalies
  ; t0_ns = Clock.now_ns ()
  ; last_render_ns = 0L
  ; done_ = 0
  ; escapes = 0
  ; divergences = 0
  ; tool_errors = 0
  ; clean = 0
  ; ci_rel_half_width = None
  ; warned_status = false
  ; line_width = 0
  }

(* ------------------------------------------------------------------ *)
(* rendering (call with t.mu held) *)

let elapsed_s t = Int64.to_float (Int64.sub (Clock.now_ns ()) t.t0_ns) /. 1e9

let rate t =
  let el = elapsed_s t in
  if el > 0.0 then float_of_int t.done_ /. el else 0.0

let eta_s t =
  match t.total with
  | Some total when t.done_ > 0 && t.done_ < total ->
      let r = rate t in
      if r > 0.0 then Some (float_of_int (total - t.done_) /. r) else None
  | _ -> None

let stderr_line t ~final =
  let b = Buffer.create 128 in
  (match t.total with
  | Some total ->
      Buffer.add_string b
        (Printf.sprintf "%d/%d %s (%.1f%%)" t.done_ total t.label
           (if total > 0 then 100.0 *. float_of_int t.done_ /. float_of_int total
            else 100.0))
  | None -> Buffer.add_string b (Printf.sprintf "%d %s" t.done_ t.label));
  if t.show_anomalies then begin
    Buffer.add_string b
      (Printf.sprintf " | esc %d div %d err %d" t.escapes t.divergences
         t.tool_errors);
    if t.clean > 0 then
      Buffer.add_string b
        (Printf.sprintf " | clean %.0f%%"
           (100.0 *. float_of_int t.clean /. float_of_int (max 1 t.done_)))
  end;
  Buffer.add_string b (Printf.sprintf " | %.1f/s" (rate t));
  (match t.ci_rel_half_width with
  | Some hw -> Buffer.add_string b (Printf.sprintf " | CI ±%.1f%%" (hw *. 100.0))
  | None -> ());
  (match eta_s t with
  | Some eta when not final ->
      Buffer.add_string b (Printf.sprintf " | ETA %.0fs" eta)
  | _ -> ());
  if final then
    Buffer.add_string b (Printf.sprintf " | done in %.1fs" (elapsed_s t));
  Buffer.contents b

let opt_float = function
  | Some f -> Json.Float f
  | None -> Json.Null

let status_json t ~final =
  Json.Obj
    [ ("schema", Json.String "bisram-progress/1")
    ; ("done", Json.Int t.done_)
    ; ( "total"
      , match t.total with Some n -> Json.Int n | None -> Json.Null )
    ; ("escapes", Json.Int t.escapes)
    ; ("divergences", Json.Int t.divergences)
    ; ("tool_errors", Json.Int t.tool_errors)
    ; ("clean", Json.Int t.clean)
    ; ("elapsed_s", Json.Float (elapsed_s t))
    ; ("per_sec", Json.Float (rate t))
    ; ("eta_s", opt_float (if final then None else eta_s t))
    ; ("ci_rel_half_width", opt_float t.ci_rel_half_width)
    ; ("finished", Json.Bool final)
    ]

let write_status t ~final path =
  (* atomic replace: readers polling the file never see a torn write *)
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out tmp in
    output_string oc (Json.to_string (status_json t ~final));
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      if not t.warned_status then begin
        t.warned_status <- true;
        Printf.eprintf "progress: cannot write status file %s: %s\n%!" path e
      end

let render t ~final =
  if t.to_stderr then begin
    let line = stderr_line t ~final in
    let pad = max 0 (t.line_width - String.length line) in
    t.line_width <- max t.line_width (String.length line);
    Printf.eprintf "\r%s%s%s%!" line (String.make pad ' ')
      (if final then "\n" else "")
  end;
  Option.iter (write_status t ~final) t.status_file

(* ------------------------------------------------------------------ *)

let update t ~done_ ~escapes ~divergences ~tool_errors ~clean =
  Mutex.lock t.mu;
  t.done_ <- done_;
  t.escapes <- escapes;
  t.divergences <- divergences;
  t.tool_errors <- tool_errors;
  t.clean <- clean;
  let now = Clock.now_ns () in
  if Int64.compare (Int64.sub now t.last_render_ns) t.min_interval_ns >= 0
  then begin
    t.last_render_ns <- now;
    render t ~final:false
  end;
  Mutex.unlock t.mu

let note_ci t ~rel_half_width =
  Mutex.lock t.mu;
  t.ci_rel_half_width <- Some rel_half_width;
  Mutex.unlock t.mu

let finish t =
  Mutex.lock t.mu;
  render t ~final:true;
  Mutex.unlock t.mu
