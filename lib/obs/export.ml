module J = Json

(* ------------------------------------------------------------------ *)
(* flat metrics JSON *)

let hist_json (h : Obs.hist_snapshot) =
  J.Obj
    [ ("count", J.Int h.Obs.count)
    ; ("sum", J.Int h.Obs.sum)
    ; ("min", J.Int h.Obs.min)
    ; ("max", J.Int h.Obs.max)
    ; ( "mean"
      , if h.Obs.count = 0 then J.Null
        else J.Float (float_of_int h.Obs.sum /. float_of_int h.Obs.count) )
    ; ( "buckets"
      , J.List
          (List.map
             (fun (k, c) ->
               J.Obj [ ("pow2", J.Int k); ("count", J.Int c) ])
             h.Obs.buckets) )
    ]

let metrics_json (s : Obs.snapshot) =
  J.Obj
    [ ("schema", J.String "bisram-metrics/1")
    ; ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) s.Obs.counters))
    ; ("histograms", J.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.Obs.hists))
    ]

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (the "JSON Array Format" with complete
   events), loadable in Perfetto / chrome://tracing *)

let ns_to_us ns = Int64.to_float ns /. 1e3

let chrome_trace_json (s : Obs.snapshot) =
  (* rebase timestamps so the trace starts at ts=0: the monotonic
     origin is arbitrary, and small numbers keep the file diffable in
     everything but the duration digits *)
  let t0 =
    List.fold_left
      (fun acc (ev : Obs.span_snapshot) ->
        if Int64.compare ev.Obs.ts_ns acc < 0 then ev.Obs.ts_ns else acc)
      (match s.Obs.spans with [] -> 0L | ev :: _ -> ev.Obs.ts_ns)
      s.Obs.spans
  in
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (ev : Obs.span_snapshot) -> ev.Obs.tid) s.Obs.spans)
  in
  let thread_meta tid =
    J.Obj
      [ ("name", J.String "thread_name")
      ; ("ph", J.String "M")
      ; ("pid", J.Int 0)
      ; ("tid", J.Int tid)
      ; ("args", J.Obj [ ("name", J.String (Printf.sprintf "domain-%d" tid)) ])
      ]
  in
  let span_event (ev : Obs.span_snapshot) =
    J.Obj
      ([ ("name", J.String ev.Obs.name)
       ; ("cat", J.String ev.Obs.cat)
       ; ("ph", J.String "X")
       ; ("pid", J.Int 0)
       ; ("tid", J.Int ev.Obs.tid)
       ; ("ts", J.Float (ns_to_us (Int64.sub ev.Obs.ts_ns t0)))
       ; ("dur", J.Float (ns_to_us ev.Obs.dur_ns))
       ]
      @
      match ev.Obs.arg with
      | None -> []
      | Some (k, v) -> [ ("args", J.Obj [ (k, J.Int v) ]) ])
  in
  J.Obj
    [ ( "traceEvents"
      , J.List (List.map thread_meta tids @ List.map span_event s.Obs.spans) )
    ; ("displayTimeUnit", J.String "ms")
    ]

(* ------------------------------------------------------------------ *)
(* human --stats table *)

type agg = {
  mutable a_count : int;
  mutable a_total : int64;
  mutable a_min : int64;
  mutable a_max : int64;
}

let stats_table (s : Obs.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  (* spans aggregated by name, listed by descending total time *)
  let aggs : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Obs.span_snapshot) ->
      let a =
        match Hashtbl.find_opt aggs ev.Obs.name with
        | Some a -> a
        | None ->
            let a =
              { a_count = 0; a_total = 0L; a_min = Int64.max_int; a_max = 0L }
            in
            Hashtbl.add aggs ev.Obs.name a;
            a
      in
      a.a_count <- a.a_count + 1;
      a.a_total <- Int64.add a.a_total ev.Obs.dur_ns;
      if Int64.compare ev.Obs.dur_ns a.a_min < 0 then a.a_min <- ev.Obs.dur_ns;
      if Int64.compare ev.Obs.dur_ns a.a_max > 0 then a.a_max <- ev.Obs.dur_ns)
    s.Obs.spans;
  let rows =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) aggs []
    |> List.sort (fun (na, a) (nb, b) ->
           match Int64.compare b.a_total a.a_total with
           | 0 -> String.compare na nb
           | c -> c)
  in
  let ms ns = Int64.to_float ns /. 1e6 in
  let us ns = Int64.to_float ns /. 1e3 in
  if rows <> [] then begin
    line "%-40s %8s %12s %12s %12s %12s" "phase" "count" "total ms" "mean us"
      "min us" "max us";
    List.iter
      (fun (name, a) ->
        line "%-40s %8d %12.3f %12.1f %12.1f %12.1f" name a.a_count
          (ms a.a_total)
          (us a.a_total /. float_of_int a.a_count)
          (us a.a_min) (us a.a_max))
      rows
  end;
  if s.Obs.counters <> [] then begin
    if rows <> [] then line "";
    line "%-48s %16s" "counter" "value";
    List.iter (fun (name, v) -> line "%-48s %16d" name v) s.Obs.counters
  end;
  if s.Obs.hists <> [] then begin
    if rows <> [] || s.Obs.counters <> [] then line "";
    line "%-40s %8s %14s %10s %10s" "histogram" "count" "mean" "min" "max";
    List.iter
      (fun (name, (h : Obs.hist_snapshot)) ->
        if h.Obs.count > 0 then
          line "%-40s %8d %14.1f %10d %10d" name h.Obs.count
            (float_of_int h.Obs.sum /. float_of_int h.Obs.count)
            h.Obs.min h.Obs.max)
      s.Obs.hists
  end;
  Buffer.contents buf
