(** Robust access to the tracked bench-history file
    ([BENCH_history.jsonl]): one JSON object per line, appended by full
    bench runs and rendered by [bench_page].

    A tracked, hand-merged JSONL file accumulates damage — conflict
    markers, truncated lines from killed runs, duplicate appends from a
    re-run bench — so reading is skip-and-warn (a malformed line never
    bricks the tooling) and appending dedupes on the (utc, bench_schema)
    identity of a record. *)

(** [read ~path] parses every line; returns the parsed records in file
    order plus one warning string per skipped line (blank lines are
    ignored silently, a missing file reads as empty). *)
val read : path:string -> Json.t list * string list

(** [append ~path record] appends [record] as one compact JSONL line —
    unless an existing well-formed line already carries the same
    ["utc"] and ["bench_schema"] values, in which case nothing is
    written and [`Duplicate] is returned.  Warnings from scanning the
    existing file are returned alongside (the caller decides where to
    print them). *)
val append :
  path:string ->
  Json.t ->
  [ `Appended | `Duplicate | `Error of string ] * string list
