module Clock = Bisram_parallel.Clock

type level = Debug | Info | Warn

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" -> Ok Warn
  | s -> Error (Printf.sprintf "unknown level %S" s)

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2
let schema = "bisram-events/1"

type event = {
  ev_seq : int;
  ev_tid : int;
  ev_ts_ns : int64;
  ev_level : level;
  ev_domain : string;
  ev_name : string;
  ev_fields : (string * Json.t) list;
}

(* ------------------------------------------------------------------ *)
(* switches *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* packed as an int so one Atomic covers it; Info by default *)
let min_level_rank = Atomic.make 1

let min_level () =
  match Atomic.get min_level_rank with 0 -> Debug | 1 -> Info | _ -> Warn

let set_min_level l = Atomic.set min_level_rank (level_rank l)
let would_log l = enabled () && level_rank l >= Atomic.get min_level_rank

(* ------------------------------------------------------------------ *)
(* per-domain shards, the Obs pattern: emission is a cons onto memory
   only the owning domain writes; the registration mutex is taken once
   per domain, and shards outlive their domain so a drain after a pool
   join sees the workers' events *)

type shard = {
  sh_id : int;
  mutable sh_seq : int;
  mutable sh_events : event list;  (* newest first *)
}

let mu = Mutex.create ()
let all_shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mu;
      let s = { sh_id = List.length !all_shards; sh_seq = 0; sh_events = [] } in
      all_shards := s :: !all_shards;
      Mutex.unlock mu;
      s)

let reset () =
  Mutex.lock mu;
  List.iter
    (fun s ->
      s.sh_seq <- 0;
      s.sh_events <- [])
    !all_shards;
  Mutex.unlock mu

let emit ?(level = Info) ~domain name fields =
  if would_log level then begin
    let s = Domain.DLS.get shard_key in
    let seq = s.sh_seq in
    s.sh_seq <- seq + 1;
    s.sh_events <-
      { ev_seq = seq
      ; ev_tid = s.sh_id
      ; ev_ts_ns = Clock.now_ns ()
      ; ev_level = level
      ; ev_domain = domain
      ; ev_name = name
      ; ev_fields = fields
      }
      :: s.sh_events
  end

let drain () =
  Mutex.lock mu;
  let shards = !all_shards in
  let evs =
    List.fold_left
      (fun acc s ->
        let evs = s.sh_events in
        s.sh_events <- [];
        List.rev_append evs acc)
      [] shards
  in
  Mutex.unlock mu;
  List.sort
    (fun a b ->
      match Int64.compare a.ev_ts_ns b.ev_ts_ns with
      | 0 -> (
          match Int.compare a.ev_tid b.ev_tid with
          | 0 -> Int.compare a.ev_seq b.ev_seq
          | c -> c)
      | c -> c)
    evs

(* ------------------------------------------------------------------ *)
(* serialization *)

let to_json ev =
  Json.Obj
    [ ("schema", Json.String schema)
    ; ("seq", Json.Int ev.ev_seq)
    ; ("tid", Json.Int ev.ev_tid)
    ; ("ts_ns", Json.Int (Int64.to_int ev.ev_ts_ns))
    ; ("level", Json.String (level_to_string ev.ev_level))
    ; ("domain", Json.String ev.ev_domain)
    ; ("name", Json.String ev.ev_name)
    ; ("fields", Json.Obj ev.ev_fields)
    ]

let ( let* ) = Result.bind

let of_json j =
  match j with
  | Json.Obj kvs ->
      let known =
        [ "schema"; "seq"; "tid"; "ts_ns"; "level"; "domain"; "name"; "fields" ]
      in
      let* () =
        List.fold_left
          (fun acc (k, _) ->
            let* () = acc in
            if List.mem k known then Ok ()
            else Error (Printf.sprintf "unknown key %S" k))
          (Ok ()) kvs
      in
      let field k =
        match List.assoc_opt k kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing key %S" k)
      in
      let int_field k =
        let* v = field k in
        match v with
        | Json.Int i -> Ok i
        | _ -> Error (Printf.sprintf "key %S is not an integer" k)
      in
      let string_field k =
        let* v = field k in
        match v with
        | Json.String s -> Ok s
        | _ -> Error (Printf.sprintf "key %S is not a string" k)
      in
      let* sch = string_field "schema" in
      let* () =
        if sch = schema then Ok ()
        else Error (Printf.sprintf "schema is %S, expected %S" sch schema)
      in
      let* seq = int_field "seq" in
      let* tid = int_field "tid" in
      let* ts = int_field "ts_ns" in
      let* lvl_s = string_field "level" in
      let* lvl = level_of_string lvl_s in
      let* domain = string_field "domain" in
      let* name = string_field "name" in
      let* fields =
        let* v = field "fields" in
        match v with
        | Json.Obj fs -> Ok fs
        | _ -> Error "key \"fields\" is not an object"
      in
      Ok
        { ev_seq = seq
        ; ev_tid = tid
        ; ev_ts_ns = Int64.of_int ts
        ; ev_level = lvl
        ; ev_domain = domain
        ; ev_name = name
        ; ev_fields = fields
        }
  | _ -> Error "event is not an object"

let parse_line line =
  let* j = Json.of_string line in
  of_json j

let write_jsonl oc evs =
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (to_json ev));
      output_char oc '\n')
    evs
