(** Exporters over {!Obs.snapshot}.  All output is deterministic in
    structure: object keys appear in a fixed order and collections are
    sorted, so two runs differ only where their measured numbers do. *)

(** Flat metrics document, schema ["bisram-metrics/1"]:
    [{"schema", "counters": {name: int, ...}, "histograms": {name:
    {count, sum, min, max, mean, buckets: [{pow2, count}]}, ...}}] with
    names sorted. *)
val metrics_json : Obs.snapshot -> Json.t

(** Chrome trace-event document (complete ["X"] events plus
    [thread_name] metadata, pid 0, tid = shard id), loadable in
    Perfetto or chrome://tracing.  Timestamps are rebased so the
    earliest span starts at [ts = 0] and converted to microseconds. *)
val chrome_trace_json : Obs.snapshot -> Json.t

(** Human-readable summary: spans aggregated by name (count / total /
    mean / min / max, by descending total time), then counters, then
    histogram summaries. *)
val stats_table : Obs.snapshot -> string
