(** Telemetry registry: named monotonic counters, log-bucketed
    histograms and lightweight phase spans, sharded per domain.

    Design invariants:

    - {b Off by default, near-free when off.}  Every recording
      entry point starts with an [Atomic.get] on the global switch and
      returns immediately when telemetry is disabled ({!span} and
      {!time} run their thunk directly).  Instrumented hot paths only
      pay that single load.
    - {b Wait-free when on.}  Each domain records into its own shard
      (a [Domain.DLS] slot), so workers never contend on counters,
      histograms or span buffers.  The only lock is taken once per
      domain, when its shard registers itself.
    - {b Deterministic merge.}  {!snapshot} sums counters and histogram
      buckets across shards — integer sums, so the result is
      independent of shard registration order and of how work was
      scheduled across domains.  Counters and histograms fed
      deterministic values are therefore byte-identical across [jobs]
      counts; see the jobs-determinism property in [test/test_obs.ml].
    - {b Telemetry never touches reports.}  Nothing in this module is
      reachable from {!Bisram_campaign.Campaign.to_json}; campaign
      reports stay byte-identical with telemetry on or off.

    Shards survive their domain (the global list keeps them alive), so
    a snapshot taken after a {!Bisram_parallel.Pool.map} join sees the
    workers' full contribution.  Take snapshots only while no
    instrumented code is running concurrently. *)

(** Whether telemetry is recording.  Off by default. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Drop all recorded data in every shard (the shards themselves stay
    registered).  Call before a run whose telemetry should stand
    alone. *)
val reset : unit -> unit

(** [add name v] bumps the counter [name] by [v] in the calling
    domain's shard.  No-op when disabled. *)
val add : string -> int -> unit

(** [incr name] = [add name 1]. *)
val incr : string -> unit

(** [observe name v] records [v] into the log-bucketed histogram
    [name]: bucket [k] counts values in [[2^k, 2^(k+1))] (values [<= 1]
    land in bucket 0).  Count, sum, min and max are tracked exactly.
    No-op when disabled. *)
val observe : string -> int -> unit

(** [span ~cat ~arg name f] runs [f] and, when enabled, records a
    timed span (entry stamp and duration from
    {!Bisram_parallel.Clock.now_ns}) in the calling domain's shard —
    also when [f] raises.  [cat] (default ["span"]) and the optional
    integer [arg] annotate the Chrome-trace event.  When disabled this
    is exactly [f ()]. *)
val span : ?cat:string -> ?arg:string * int -> string -> (unit -> 'a) -> 'a

(** [time name f] runs [f] and records its duration in nanoseconds
    into the histogram [name] (also when [f] raises).  When disabled
    this is exactly [f ()]. *)
val time : string -> (unit -> 'a) -> 'a

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
      (** (bucket exponent, count) for non-empty buckets, ascending *)
}

type span_snapshot = {
  name : string;
  cat : string;
  arg : (string * int) option;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;  (** shard id — one per recording domain *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  hists : (string * hist_snapshot) list;  (** sorted by name *)
  spans : span_snapshot list;  (** sorted by (ts, tid, name) *)
}

(** Merge every shard into one deterministic view (stable key order,
    order-independent sums). *)
val snapshot : unit -> snapshot
