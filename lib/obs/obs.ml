module Clock = Bisram_parallel.Clock

(* ------------------------------------------------------------------ *)
(* global switch *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* per-domain shards

   Every domain that touches the registry gets its own shard (via
   [Domain.DLS]), so the instrumented hot paths never contend: an
   increment is a hashtable hit plus an int-ref bump on memory only the
   owning domain writes.  Shards register themselves in a global list
   (mutex-taken once per domain, at first use) and stay registered after
   their domain dies, which is what lets {!snapshot} merge the work of
   pool workers after the joins. *)

let n_buckets = 63

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;  (* index k counts values in [2^k, 2^(k+1)) *)
}

type span_ev = {
  sp_name : string;
  sp_cat : string;
  sp_arg : (string * int) option;
  sp_ts : int64;  (* Clock.now_ns at entry *)
  sp_dur : int64;
  sp_shard : int;
}

type shard = {
  sh_id : int;
  sh_counters : (string, int ref) Hashtbl.t;
  sh_hists : (string, hist) Hashtbl.t;
  mutable sh_spans : span_ev list;
}

let mu = Mutex.create ()
let all_shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mu;
      let s =
        { sh_id = List.length !all_shards
        ; sh_counters = Hashtbl.create 32
        ; sh_hists = Hashtbl.create 16
        ; sh_spans = []
        }
      in
      all_shards := s :: !all_shards;
      Mutex.unlock mu;
      s)

let shard () = Domain.DLS.get shard_key

let reset () =
  Mutex.lock mu;
  List.iter
    (fun s ->
      Hashtbl.reset s.sh_counters;
      Hashtbl.reset s.sh_hists;
      s.sh_spans <- [])
    !all_shards;
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* recording *)

let add name v =
  if enabled () then begin
    let s = shard () in
    match Hashtbl.find_opt s.sh_counters name with
    | Some r -> r := !r + v
    | None -> Hashtbl.add s.sh_counters name (ref v)
  end

let incr name = add name 1

let bucket_of v =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  if v <= 0 then 0 else min (n_buckets - 1) (go 0 v)

let observe name v =
  if enabled () then begin
    let s = shard () in
    let h =
      match Hashtbl.find_opt s.sh_hists name with
      | Some h -> h
      | None ->
          let h =
            { h_count = 0
            ; h_sum = 0
            ; h_min = max_int
            ; h_max = min_int
            ; h_buckets = Array.make n_buckets 0
            }
          in
          Hashtbl.add s.sh_hists name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

let span ?(cat = "span") ?arg name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        let s = shard () in
        s.sh_spans <-
          { sp_name = name
          ; sp_cat = cat
          ; sp_arg = arg
          ; sp_ts = t0
          ; sp_dur = Int64.sub t1 t0
          ; sp_shard = s.sh_id
          }
          :: s.sh_spans)
      f
  end

let time name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        observe name (Int64.to_int (Int64.sub (Clock.now_ns ()) t0)))
      f
  end

(* ------------------------------------------------------------------ *)
(* snapshot / merge *)

type hist_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;  (* (bucket exponent, count), sorted *)
}

type span_snapshot = {
  name : string;
  cat : string;
  arg : (string * int) option;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
}

type snapshot = {
  counters : (string * int) list;
  hists : (string * hist_snapshot) list;
  spans : span_snapshot list;
}

let snapshot () =
  Mutex.lock mu;
  let shards = !all_shards in
  Mutex.unlock mu;
  (* counter sums are order-independent, so merging shard-by-shard is
     deterministic whatever the registration order was *)
  let counters : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  let spans = ref [] in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name r ->
          Hashtbl.replace counters name
            (!r + Option.value ~default:0 (Hashtbl.find_opt counters name)))
        s.sh_counters;
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt hists name with
          | None ->
              Hashtbl.add hists name
                { h_count = h.h_count
                ; h_sum = h.h_sum
                ; h_min = h.h_min
                ; h_max = h.h_max
                ; h_buckets = Array.copy h.h_buckets
                }
          | Some acc ->
              acc.h_count <- acc.h_count + h.h_count;
              acc.h_sum <- acc.h_sum + h.h_sum;
              if h.h_min < acc.h_min then acc.h_min <- h.h_min;
              if h.h_max > acc.h_max then acc.h_max <- h.h_max;
              Array.iteri
                (fun i c -> acc.h_buckets.(i) <- acc.h_buckets.(i) + c)
                h.h_buckets)
        s.sh_hists;
      List.iter
        (fun ev ->
          spans :=
            { name = ev.sp_name
            ; cat = ev.sp_cat
            ; arg = ev.sp_arg
            ; ts_ns = ev.sp_ts
            ; dur_ns = ev.sp_dur
            ; tid = ev.sp_shard
            }
            :: !spans)
        s.sh_spans)
    shards;
  let sorted_assoc tbl f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hist_snap h =
    { count = h.h_count
    ; sum = h.h_sum
    ; min = h.h_min
    ; max = h.h_max
    ; buckets =
        (let acc = ref [] in
         for i = n_buckets - 1 downto 0 do
           if h.h_buckets.(i) > 0 then acc := (i, h.h_buckets.(i)) :: !acc
         done;
         !acc)
    }
  in
  { counters = sorted_assoc counters Fun.id
  ; hists = sorted_assoc hists hist_snap
  ; spans =
      List.sort
        (fun a b ->
          match Int64.compare a.ts_ns b.ts_ns with
          | 0 -> (
              match Int.compare a.tid b.tid with
              | 0 -> String.compare a.name b.name
              | c -> c)
          | c -> c)
        !spans
  }
