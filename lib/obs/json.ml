type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf j;
  Buffer.contents buf

let rec pp_indented buf ~indent = function
  | Obj fields when fields <> [] ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  \"";
          add_escaped buf k;
          Buffer.add_string buf "\": ";
          pp_indented buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | List items when items <> [] ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          pp_indented buf ~indent:(indent + 2) x)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | j -> emit buf j

let to_pretty_string j =
  let buf = Buffer.create 4096 in
  pp_indented buf ~indent:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing — used by the smoke gates to validate exporter output *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    (* minimal UTF-8 encoder for decoded \u escapes *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* combine a surrogate pair when one follows *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                  else fail "invalid low surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | _ -> fail "invalid escape");
          go ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if lit = "" then fail "expected a number";
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
