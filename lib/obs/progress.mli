(** Live progress reporter for long campaigns and sweeps: periodic
    snapshots (items done/total, anomaly counts, throughput, ETA, and —
    when an adaptive estimator is running — the current relative CI
    half-width) rendered as a rewriting stderr line and/or an
    atomically replaced JSON status file.

    The reporter is a write-only side channel: it never feeds report
    serialization, so reports stay byte-identical with progress on or
    off.  Updates are mutex-guarded (they arrive from pool workers) and
    rate-limited, so even very fast runs pay a bounded rendering cost.
    Status-file write failures are warned once and never kill the
    run. *)

type t

(** [create ()] with:
    - [total]: expected item count, enabling percentage and ETA;
    - [status_file]: path rewritten atomically (temp + rename) with a
      ["bisram-progress/1"] JSON snapshot on each render;
    - [to_stderr]: maintain a ["\r"]-rewriting one-line display;
    - [min_interval_s]: minimum seconds between renders (default 0.5);
    - [label]: item noun for the stderr line (default ["trials"]);
    - [show_anomalies]: include the escape/divergence/error and clean
      segments in the stderr line (default true; the status file always
      carries the counts). *)
val create :
  ?total:int ->
  ?status_file:string ->
  ?to_stderr:bool ->
  ?min_interval_s:float ->
  ?label:string ->
  ?show_anomalies:bool ->
  unit ->
  t

(** Absolute cumulative counts (not deltas); renders when the rate
    limiter allows. *)
val update :
  t ->
  done_:int ->
  escapes:int ->
  divergences:int ->
  tool_errors:int ->
  clean:int ->
  unit

(** Record the estimator's current relative CI half-width, shown on
    subsequent renders. *)
val note_ci : t -> rel_half_width:float -> unit

(** Force a final render (ignoring the rate limiter), mark the status
    file ["done": true], and terminate the stderr line with a
    newline. *)
val finish : t -> unit
