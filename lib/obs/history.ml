let read_lines path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []

let read ~path =
  let records = ref [] and warnings = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Json.of_string line with
        | Ok j -> records := j :: !records
        | Error e ->
            warnings :=
              Printf.sprintf "%s:%d: skipping malformed line: %s" path (i + 1)
                e
              :: !warnings)
    (read_lines path);
  (List.rev !records, List.rev !warnings)

(* the identity of a history record: when it was taken and under which
   bench schema.  Two records agreeing on both are the same
   measurement, whatever the numbers say. *)
let identity j =
  (Json.member "utc" j, Json.member "bench_schema" j)

let append ~path record =
  let existing, warnings = read ~path in
  let id = identity record in
  if List.exists (fun j -> identity j = id) existing then (`Duplicate, warnings)
  else
    match
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Json.to_string record);
      output_char oc '\n';
      close_out oc
    with
    | () -> (`Appended, warnings)
    | exception Sys_error e -> (`Error e, warnings)
