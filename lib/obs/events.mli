(** Structured, leveled run-event stream: the narrative counterpart of
    the {!Obs} registry.  Where counters answer "how many", events
    answer "what happened, when, in what order" — run and phase
    lifecycle, pool retries and deadline kills, chaos injections, cache
    hits/quarantines/reaps, checkpoint writes, estimator adaptive-batch
    decisions — as one JSONL line per event.

    Design invariants (mirroring {!Obs}):

    - {b Off by default, near-free when off.}  {!emit} starts with one
      [Atomic.get] and returns immediately when the stream is disabled
      or the event is below the minimum level.  Hot trial loops are
      never instrumented at trial granularity: emission sites are at
      unit/batch/lifecycle granularity, so the per-trial path is
      untouched whatever the switch says.
    - {b Wait-free when on.}  Each domain buffers into its own
      [Domain.DLS] shard; the only lock is taken once per domain at
      shard registration.  Shards survive their domain, so a drain
      after a pool join sees every worker's events.
    - {b Deterministic payloads, nondeterministic interleaving.}  The
      (domain, name, fields) payload of every event is a pure function
      of the work item that emitted it; only the [ts_ns]/[tid]/[seq]
      envelope depends on scheduling.  Dropping the envelope therefore
      yields a jobs-invariant multiset (gated in [test/test_events.ml]).
    - {b Events never touch reports.}  Nothing here is reachable from
      report serialization; campaign/explore reports are byte-identical
      with events on or off. *)

type level = Debug | Info | Warn

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

(** Per-line schema tag carried by every serialized event. *)
val schema : string

type event = {
  ev_seq : int;  (** per-shard emission sequence number *)
  ev_tid : int;  (** shard id — one per emitting domain *)
  ev_ts_ns : int64;  (** {!Bisram_parallel.Clock.now_ns} at emission *)
  ev_level : level;
  ev_domain : string;  (** subsystem: "campaign", "pool", "cache", ... *)
  ev_name : string;  (** event kind, e.g. "run.start", "pool.retry" *)
  ev_fields : (string * Json.t) list;  (** structured payload, in order *)
}

(** Whether the stream is recording.  Off by default. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Minimum recorded level (default [Info]; set [Debug] to also keep
    per-point cache hit/miss and per-batch lane events). *)
val min_level : unit -> level

val set_min_level : level -> unit

(** [would_log lvl] is true when an {!emit} at [lvl] would record —
    the guard to use before building an expensive field list. *)
val would_log : level -> bool

(** Drop all buffered events in every shard and restart sequence
    numbering (the shards themselves stay registered). *)
val reset : unit -> unit

(** [emit ?level ~domain name fields] buffers one event in the calling
    domain's shard.  No-op when disabled or below {!min_level}.
    [level] defaults to [Info]. *)
val emit : ?level:level -> domain:string -> string -> (string * Json.t) list -> unit

(** Destructively collect every buffered event from every shard, merged
    and sorted by [(ts_ns, tid, seq)].  Take drains only while no
    instrumented code runs concurrently. *)
val drain : unit -> event list

(** One JSONL object: [{"schema":…,"seq":…,"tid":…,"ts_ns":…,
    "level":…,"domain":…,"name":…,"fields":{…}}]. *)
val to_json : event -> Json.t

(** Strict inverse of {!to_json}: every envelope key required with the
    right type, schema tag checked, unknown keys rejected. *)
val of_json : Json.t -> (event, string) result

(** Strict parse of one JSONL line ({!Json.of_string} + {!of_json}). *)
val parse_line : string -> (event, string) result

(** Write events one compact JSON object per line. *)
val write_jsonl : out_channel -> event list -> unit
