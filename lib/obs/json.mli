(** A minimal deterministic JSON representation, shared by the campaign
    reports and the telemetry exporters.

    Serialization is fully deterministic: object fields are emitted in
    the order given, floats through a fixed ["%.9g"] format (integral
    values as ["%.1f"]), so the same value always produces the same
    bytes — the property the campaign's replay discipline and the
    diffable telemetry artifacts both rely on.

    {!of_string} is a strict parser for the same grammar, used by the
    smoke gates to validate exporter output without an external JSON
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. *)
val to_string : t -> string

(** Two-space-indented rendering, trailing newline (the CLI output). *)
val to_pretty_string : t -> string

(** Strict parse of a complete JSON document.  Numbers without a
    fraction or exponent parse as [Int] (falling back to [Float] when
    they overflow); [\u] escapes are decoded to UTF-8, including
    surrogate pairs.  [Error] carries a message with a byte offset. *)
val of_string : string -> (t, string) result

(** [member k j] is the value of field [k] when [j] is an [Obj] that
    has one, [None] otherwise. *)
val member : string -> t -> t option
