(** Lane-wise march execution over a {!Bisram_sram.Lanes} batch store.

    One pass advances every lane (campaign trial) of the store through
    the whole march test at once and reduces the comparator result
    lane-wise: the returned int has bit [l] set iff lane [l] saw at
    least one read mismatch — the information the batched campaign
    scheduler needs to decide pass/fail per trial without unpacking
    any lane.  No failure records are built (a failing lane is re-run
    on the scalar engine, which produces the byte-identical report
    detail). *)

(** [run_pass ?clear lanes test ~backgrounds] applies the march once
    per background and returns the lane fail mask.  [clear] (default
    [true]) starts from power-up state, like {!Engine.run}; pass
    [~clear:false] to continue on the current state, like the
    microprogrammed controller's second pass.  Stops early once every
    lane has failed. *)
val run_pass :
  ?clear:bool ->
  Bisram_sram.Lanes.t ->
  March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  int
