module Model = Bisram_sram.Model
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word

type hooks = {
  record_fault : row:int -> [ `Ok | `Full ];
  would_overflow : row:int -> bool;
  enable_remap : unit -> unit;
  faults_recorded : unit -> int;
}

let no_repair_hooks =
  { record_fault = (fun ~row:_ -> `Full)
  ; would_overflow = (fun ~row:_ -> true)
  ; enable_remap = (fun () -> ())
  ; faults_recorded = (fun () -> 0)
  }

type outcome = Passed_clean | Repaired | Repair_unsuccessful

(* Conditions sampled by the transition logic.  The controller uses a
   two-phase clock: phase 1 performs the state's datapath work (the RAM
   operation settles and the comparator resolves), phase 2 evaluates the
   PLA, so a state's guards see the effect of its own work. *)
type cond = Test_enable | Cmp_fail | Elem_done | Bg_done | Tlb_full | Ret_ack

let all_conds = [ Test_enable; Cmp_fail; Elem_done; Bg_done; Tlb_full; Ret_ack ]

(* Control outputs.  "Work" actions fire in phase 1 and may only appear
   in a state's work list; "exit" actions fire in phase 2 on the taken
   transition.  The two sets are disjoint so the PLA image can drive
   both phases. *)
type action =
  | Apply_read (* work *)
  | Apply_write (* work *)
  | Data_complement (* work: modifies Apply_* to use ~background *)
  | Addr_reset_up (* work *)
  | Addr_reset_down (* work *)
  | Request_wait (* work *)
  | Sig_done (* work: status *)
  | Sig_fail (* work: status *)
  | Addr_step (* exit *)
  | Record_row (* exit *)
  | Next_background (* exit *)
  | Reset_background (* exit *)
  | Enable_remap (* exit *)

let all_actions =
  [ Apply_read; Apply_write; Data_complement; Addr_reset_up; Addr_reset_down
  ; Request_wait; Sig_done; Sig_fail; Addr_step; Record_row; Next_background
  ; Reset_background; Enable_remap
  ]

let action_index a =
  let rec find i = function
    | [] -> assert false
    | x :: rest -> if x = a then i else find (i + 1) rest
  in
  find 0 all_actions

let is_work_action = function
  | Apply_read | Apply_write | Data_complement | Addr_reset_up
  | Addr_reset_down | Request_wait | Sig_done | Sig_fail ->
      true
  | Addr_step | Record_row | Next_background | Reset_background | Enable_remap
    ->
      false

type sdef = {
  name : string;
  work : action list;
  uses : cond list;
  next : (cond -> bool) -> action list * int;
}

type t = {
  test : March.t;
  words : int;
  backgrounds : Word.t list;
      (* empty for layout-only controllers ({!compile_layout}) *)
  n_backgrounds : int;
  states : sdef array;
  idle : int;
  done_ok : int;
  fail : int;
}

type report = { outcome : outcome; cycles : int; faults_recorded : int }

let reset_action = function
  | March.Down -> Addr_reset_down
  | March.Up | March.Either -> Addr_reset_up

(* The FSM layout depends only on the march test; backgrounds enter as
   a loop whose trip count is [n_backgrounds], so layout-only flows
   (wide words that the packed simulator cannot represent) compile with
   the count alone and an empty value list. *)
let compile_gen test ~words ~backgrounds ~n_backgrounds =
  if words <= 0 then invalid_arg "Controller.compile: words";
  if n_backgrounds < 1 then invalid_arg "Controller.compile: no backgrounds";
  let items = Array.of_list test.March.items in
  let n_items = Array.length items in
  if n_items = 0 then invalid_arg "Controller.compile: empty march";
  (* ----- id layout ----- *)
  let counter = ref 0 in
  let alloc () =
    let id = !counter in
    incr counter;
    id
  in
  let idle = alloc () in
  let setup_id = Array.make_matrix 2 n_items (-1) in
  let op_ids = Array.init 2 (fun _ -> Array.make n_items [||]) in
  let wait_id = Array.make_matrix 2 n_items (-1) in
  let next_bg_id = Array.make 2 (-1) in
  let tlb_check = ref (-1) in
  let pass2_setup = ref (-1) in
  for p = 0 to 1 do
    for i = 0 to n_items - 1 do
      match items.(i) with
      | March.Elem e ->
          setup_id.(p).(i) <- alloc ();
          op_ids.(p).(i) <- Array.init (List.length e.March.ops) (fun _ -> alloc ())
      | March.Wait -> wait_id.(p).(i) <- alloc ()
    done;
    next_bg_id.(p) <- alloc ();
    if p = 0 then begin
      tlb_check := alloc ();
      pass2_setup := alloc ()
    end
  done;
  let done_ok = alloc () in
  let fail = alloc () in
  let n_states = !counter in
  let item_entry p i =
    match items.(i) with
    | March.Elem _ -> setup_id.(p).(i)
    | March.Wait -> wait_id.(p).(i)
  in
  let first_item p = item_entry p 0 in
  let next_item p i = if i + 1 < n_items then item_entry p (i + 1) else next_bg_id.(p) in
  (* ----- state definitions ----- *)
  let states = Array.make n_states
      { name = "?"; work = []; uses = []; next = (fun _ -> ([], 0)) }
  in
  states.(idle) <-
    { name = "IDLE"
    ; work = []
    ; uses = [ Test_enable ]
    ; next =
        (fun c ->
          if c Test_enable then ([ Reset_background ], first_item 0)
          else ([], idle))
    };
  for p = 0 to 1 do
    let pn = p + 1 in
    for i = 0 to n_items - 1 do
      match items.(i) with
      | March.Wait ->
          let self = wait_id.(p).(i) in
          states.(self) <-
            { name = Printf.sprintf "P%d_WAIT%d" pn i
            ; work = [ Request_wait ]
            ; uses = [ Ret_ack ]
            ; next =
                (fun c -> if c Ret_ack then ([], next_item p i) else ([], self))
            }
      | March.Elem e ->
          states.(setup_id.(p).(i)) <-
            { name = Printf.sprintf "P%d_SETUP%d" pn i
            ; work = [ reset_action e.March.order ]
            ; uses = []
            ; next = (fun _ -> ([], op_ids.(p).(i).(0)))
            };
          let ops = Array.of_list e.March.ops in
          let n_ops = Array.length ops in
          for j = 0 to n_ops - 1 do
            let self = op_ids.(p).(i).(j) in
            let is_last = j = n_ops - 1 in
            let is_read = match ops.(j) with March.R _ -> true | March.W _ -> false in
            let compl =
              match ops.(j) with March.R c | March.W c -> c
            in
            let work =
              (if is_read then [ Apply_read ] else [ Apply_write ])
              @ (if compl then [ Data_complement ] else [])
            in
            let uses =
              (if is_read then [ Cmp_fail ] else [])
              @ (if is_read && p = 0 then [ Tlb_full ] else [])
              @ if is_last then [ Elem_done ] else []
            in
            let advance c record =
              if is_last then
                if c Elem_done then (record, next_item p i)
                else (record @ [ Addr_step ], op_ids.(p).(i).(0))
              else (record, op_ids.(p).(i).(j + 1))
            in
            states.(self) <-
              { name =
                  Printf.sprintf "P%d_E%d_%s%d" pn i
                    (match ops.(j) with
                    | March.R c -> if c then "R1_" else "R0_"
                    | March.W c -> if c then "W1_" else "W0_")
                    j
              ; work
              ; uses
              ; next =
                  (fun c ->
                    let failed = is_read && c Cmp_fail in
                    if failed && p = 1 then ([], fail)
                    else if failed && c Tlb_full then ([], fail)
                    else advance c (if failed then [ Record_row ] else []))
              }
          done
    done;
    let self = next_bg_id.(p) in
    states.(self) <-
      { name = Printf.sprintf "P%d_NEXTBG" pn
      ; work = []
      ; uses = [ Bg_done ]
      ; next =
          (fun c ->
            if c Bg_done then ([], if p = 0 then !tlb_check else done_ok)
            else ([ Next_background ], first_item p))
      }
  done;
  states.(!tlb_check) <-
    { name = "TLB_CHECK"
    ; work = []
    ; uses = []
    ; next = (fun _ -> ([], !pass2_setup))
    };
  states.(!pass2_setup) <-
    { name = "PASS2_SETUP"
    ; work = []
    ; uses = []
    ; next = (fun _ -> ([ Enable_remap; Reset_background ], first_item 1))
    };
  states.(done_ok) <-
    { name = "DONE_OK"; work = [ Sig_done ]; uses = []; next = (fun _ -> ([], done_ok)) };
  states.(fail) <-
    { name = "FAIL"; work = [ Sig_fail ]; uses = []; next = (fun _ -> ([], fail)) };
  (* work/exit disjointness invariant *)
  Array.iter
    (fun s -> List.iter (fun a -> assert (is_work_action a)) s.work)
    states;
  { test; words; backgrounds; n_backgrounds; states; idle; done_ok; fail }

let compile test ~words ~backgrounds =
  compile_gen test ~words ~backgrounds
    ~n_backgrounds:(List.length backgrounds)

let compile_layout test ~words ~n_backgrounds =
  compile_gen test ~words ~backgrounds:[] ~n_backgrounds

let state_count t = Array.length t.states

let flipflop_count t =
  let n = state_count t in
  let rec go acc k = if k >= n then acc else go (acc + 1) (k * 2) in
  go 0 1

let state_names t = Array.map (fun s -> s.name) t.states

(* ------------------------------------------------------------------ *)
(* Datapath shared by symbolic and PLA-driven execution *)

type datapath = {
  model : Model.t;
  hooks : hooks;
  addgen : Addgen.t;
  bgs : Word.t array;
  mutable bg_idx : int;
  mutable dir : March.order;
  mutable cmp_fail : bool;
  mutable recorded : int;
  mutable waited : bool;
}

let make_datapath t model hooks =
  if t.backgrounds = [] then
    invalid_arg "Controller.run: layout-only controller (no backgrounds)";
  Model.clear model;
  { model
  ; hooks
  ; addgen = Addgen.create ~limit:t.words
  ; bgs = Array.of_list t.backgrounds
  ; bg_idx = 0
  ; dir = March.Up
  ; cmp_fail = false
  ; recorded = 0
  ; waited = false
  }

let current_row dp =
  Org.row_of_addr (Model.org dp.model) (Addgen.value dp.addgen)

let eval_cond dp = function
  | Test_enable -> true
  | Cmp_fail -> dp.cmp_fail
  | Elem_done -> (
      let v = Addgen.value dp.addgen in
      match dp.dir with
      | March.Up | March.Either -> v = Addgen.limit dp.addgen - 1
      | March.Down -> v = 0)
  | Bg_done -> dp.bg_idx = Array.length dp.bgs - 1
  | Tlb_full -> dp.hooks.would_overflow ~row:(current_row dp)
  | Ret_ack -> dp.waited

let exec_actions dp actions =
  let compl = List.mem Data_complement actions in
  let bg () =
    let b = dp.bgs.(dp.bg_idx) in
    if compl then Word.lnot_ b else b
  in
  List.iter
    (fun a ->
      match a with
      | Data_complement | Sig_done | Sig_fail -> ()
      | Apply_read ->
          let got = Model.read_word dp.model (Addgen.value dp.addgen) in
          dp.cmp_fail <- not (Word.equal (bg ()) got)
      | Apply_write -> Model.write_word dp.model (Addgen.value dp.addgen) (bg ())
      | Addr_reset_up ->
          dp.dir <- March.Up;
          Addgen.reset dp.addgen ~dir:March.Up
      | Addr_reset_down ->
          dp.dir <- March.Down;
          Addgen.reset dp.addgen ~dir:March.Down
      | Request_wait ->
          Model.retention_wait dp.model;
          dp.waited <- true
      | Addr_step -> ignore (Addgen.step dp.addgen ~dir:dp.dir)
      | Record_row -> (
          match dp.hooks.record_fault ~row:(current_row dp) with
          | `Ok -> dp.recorded <- dp.hooks.faults_recorded ()
          | `Full -> (* guarded against by Tlb_full *) assert false)
      | Next_background -> dp.bg_idx <- dp.bg_idx + 1
      | Reset_background -> dp.bg_idx <- 0
      | Enable_remap -> dp.hooks.enable_remap ())
    actions;
  (* leaving a wait state consumes the acknowledge *)
  if not (List.mem Request_wait actions) then dp.waited <- false

let finish t dp state cycles =
  let outcome =
    if state = t.fail then Repair_unsuccessful
    else if dp.recorded = 0 then Passed_clean
    else Repaired
  in
  { outcome; cycles; faults_recorded = dp.recorded }

let cycle_budget t =
  let per_pass =
    March.ops_per_address t.test * t.words * t.n_backgrounds
  in
  (8 * (per_pass + 100) * 2) + 1000

let run t model hooks =
  let dp = make_datapath t model hooks in
  let budget = cycle_budget t in
  let rec go state cycles =
    if state = t.done_ok || state = t.fail then finish t dp state cycles
    else if cycles > budget then
      failwith "Controller.run: cycle budget exceeded (FSM livelock?)"
    else begin
      let s = t.states.(state) in
      exec_actions dp s.work;
      let exits, next = s.next (eval_cond dp) in
      exec_actions dp exits;
      go next (cycles + 1)
    end
  in
  go t.idle 0

(* ------------------------------------------------------------------ *)
(* PLA compilation *)

let n_conds = List.length all_conds
let n_actions = List.length all_actions

let to_pla t =
  let nbits = flipflop_count t in
  let n_inputs = nbits + n_conds in
  let n_outputs = nbits + n_actions in
  let pla = Trpla.create ~n_inputs ~n_outputs in
  Array.iteri
    (fun id s ->
      let used = s.uses in
      let k = List.length used in
      (* one term per assignment of the used conditions *)
      for mask = 0 to (1 lsl k) - 1 do
        let assignment =
          List.mapi (fun i c -> (c, mask land (1 lsl i) <> 0)) used
        in
        let env c =
          match List.assoc_opt c assignment with
          | Some v -> v
          | None -> false
        in
        let exits, next = s.next env in
        let ands =
          Array.init n_inputs (fun i ->
              if i < nbits then
                (* state encoding, LSB first *)
                if id land (1 lsl i) <> 0 then Trpla.T else Trpla.F
              else
                let c = List.nth all_conds (i - nbits) in
                match List.assoc_opt c assignment with
                | Some true -> Trpla.T
                | Some false -> Trpla.F
                | None -> Trpla.X)
        in
        let ors = Array.make n_outputs false in
        for b = 0 to nbits - 1 do
          if next land (1 lsl b) <> 0 then ors.(b) <- true
        done;
        List.iter (fun a -> ors.(nbits + action_index a) <- true) (s.work @ exits);
        Trpla.add_term pla ~ands ~ors
      done)
    t.states;
  pla

let run_via_pla t model hooks =
  let pla = to_pla t in
  let nbits = flipflop_count t in
  let dp = make_datapath t model hooks in
  let budget = cycle_budget t in
  let inputs_of state env =
    Array.init (nbits + n_conds) (fun i ->
        if i < nbits then state land (1 lsl i) <> 0
        else env (List.nth all_conds (i - nbits)))
  in
  let decode out =
    let next = ref 0 in
    for b = 0 to nbits - 1 do
      if out.(b) then next := !next lor (1 lsl b)
    done;
    let actions =
      List.filter (fun a -> out.(nbits + action_index a)) all_actions
    in
    (!next, actions)
  in
  let rec go state cycles =
    if state = t.done_ok || state = t.fail then finish t dp state cycles
    else if cycles > budget then
      failwith "Controller.run_via_pla: cycle budget exceeded"
    else begin
      (* phase 1: work lines are identical on every term of this state,
         so evaluating with pre-work conditions yields them correctly *)
      let out_a = Trpla.eval pla (inputs_of state (eval_cond dp)) in
      let _, acts_a = decode out_a in
      exec_actions dp (List.filter is_work_action acts_a);
      (* phase 2: conditions now reflect the work; take the transition.
         Exit actions are simultaneous register updates in hardware:
         Record_row samples the CURRENT address register, so it must
         replay before Addr_step. *)
      let out_b = Trpla.eval pla (inputs_of state (eval_cond dp)) in
      let next, acts_b = decode out_b in
      let exits = List.filter (fun a -> not (is_work_action a)) acts_b in
      let steps, others = List.partition (fun a -> a = Addr_step) exits in
      exec_actions dp (others @ steps);
      go next (cycles + 1)
    end
  in
  go t.idle 0

let pp_outcome ppf = function
  | Passed_clean -> Format.pp_print_string ppf "passed (no repair needed)"
  | Repaired -> Format.pp_print_string ppf "repaired"
  | Repair_unsuccessful -> Format.pp_print_string ppf "REPAIR UNSUCCESSFUL"
