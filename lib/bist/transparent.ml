module Word = Bisram_sram.Word
module Model = Bisram_sram.Model

type result = { detected : bool; contents_preserved : bool }

let is_pure_write = function
  | March.Wait -> false
  | March.Elem { ops; _ } ->
      List.for_all (function March.W _ -> true | March.R _ -> false) ops

(* The transparent transform drops a leading initialization element and
   appends a restore write when the test ends with complemented data. *)
let split_init test =
  match test.March.items with
  | first :: rest when is_pure_write first -> rest
  | items -> items

let final_phase items =
  (* complement state of each cell after the last write (None = never
     written, contents already intact) *)
  List.fold_left
    (fun acc item ->
      match item with
      | March.Wait -> acc
      | March.Elem { ops; _ } ->
          List.fold_left
            (fun acc op ->
              match op with March.W c -> Some c | March.R _ -> acc)
            acc ops)
    None items

let transformed_ops_per_address test =
  let items = split_init test in
  let base =
    List.fold_left
      (fun acc item ->
        match item with
        | March.Wait -> acc
        | March.Elem { ops; _ } -> acc + List.length ops)
      0 items
  in
  match final_phase items with Some true -> base + 1 | Some false | None -> base

(* A rotate-and-xor MISR over read words: the packed word value feeds
   the signature directly (no string hashing, no allocation). *)
let misr_step sig_ w =
  let rot = ((sig_ lsl 1) lor (sig_ lsr 61)) land ((1 lsl 62) - 1) in
  rot lxor Word.to_int w

let iter_addresses n order f =
  match order with
  | March.Up | March.Either ->
      for a = 0 to n - 1 do
        f a
      done
  | March.Down ->
      for a = n - 1 downto 0 do
        f a
      done

let run (ram : Engine.ram) test =
  let items = split_init test in
  (* initial-content snapshot: the hardware's prediction pass reads the
     array once; we also keep it to check restoration *)
  let s = Array.init ram.Engine.words ram.Engine.read in
  let datum addr c = if c then Word.lnot_ s.(addr) else s.(addr) in
  (* prediction phase: fault-free signature over the expected reads *)
  let predicted = ref 0 in
  List.iter
    (fun item ->
      match item with
      | March.Wait -> ()
      | March.Elem { order; ops } ->
          iter_addresses ram.Engine.words order (fun addr ->
              List.iter
                (fun op ->
                  match op with
                  | March.W _ -> ()
                  | March.R c -> predicted := misr_step !predicted (datum addr c))
                ops))
    items;
  (* test phase: apply the transformed ops, compress observed reads *)
  let observed = ref 0 in
  List.iter
    (fun item ->
      match item with
      | March.Wait -> ram.Engine.retention_wait ()
      | March.Elem { order; ops } ->
          iter_addresses ram.Engine.words order (fun addr ->
              List.iter
                (fun op ->
                  match op with
                  | March.W c -> ram.Engine.write addr (datum addr c)
                  | March.R _ ->
                      observed := misr_step !observed (ram.Engine.read addr))
                ops))
    items;
  (* restore phase: bring every word back to its initial content *)
  (match final_phase items with
  | Some true ->
      for addr = 0 to ram.Engine.words - 1 do
        ram.Engine.write addr s.(addr)
      done
  | Some false | None -> ());
  let contents_preserved =
    let ok = ref true in
    for addr = 0 to ram.Engine.words - 1 do
      if not (Word.equal (ram.Engine.read addr) s.(addr)) then ok := false
    done;
    !ok
  in
  { detected = !predicted <> !observed; contents_preserved }

let run_model model test = run (Engine.ram_of_model model) test
