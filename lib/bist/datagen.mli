(** DATAGEN: the test data-background generator and comparator.

    A Johnson (twisted-ring) counter of [bpw] stages steps through
    2*bpw states; the half-cycle from all-0 to all-1 yields the
    "blanket" background set all-0, 10...0, 110...0, ..., all-1.  The
    paper applies bpw/2 + 1 of these states ([required_backgrounds]);
    the full half-cycle set ([half_cycle_backgrounds]) gives every
    adjacent-pair both polarities and is what the coverage experiments
    use for wide words.

    DATAGEN also performs read comparison (XOR per bit, OR-reduced). *)

type t

(** @raise Invalid_argument unless [0 < bpw <= Word.max_width]: the
    counter state is packed into one native int, like {!Word}. *)
val create : bpw:int -> t
val bpw : t -> int

val reset : t -> unit
(** back to all-0 *)

val state : t -> Bisram_sram.Word.t

(** One Johnson-counter clock: shift right, complement of last bit into
    bit 0 (so the pattern of 1s grows from bit 0). *)
val step : t -> unit

(** The paper's background count: bpw/2 + 1. *)
val required_count : bpw:int -> int

(** The backgrounds BISRAMGEN applies (length = required_count):
    every second half-cycle state, always beginning with all-0 and
    ending with all-1. *)
val required_backgrounds : bpw:int -> Bisram_sram.Word.t list

(** All bpw+1 half-cycle states: all-0, 1, 11, ..., all-1. *)
val half_cycle_backgrounds : bpw:int -> Bisram_sram.Word.t list

(** [matches ~expected ~got] is the comparator: true when equal. *)
val matches :
  expected:Bisram_sram.Word.t -> got:Bisram_sram.Word.t -> bool

(** Flip-flop count (bpw) — hardware-cost reporting. *)
val ff_count : t -> int

val gate_count : t -> int
(** Johnson counter + XOR comparator + OR reduction. *)
