module Model = Bisram_sram.Model
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word

type failure = {
  background : Word.t;
  item : int;
  op : int;
  addr : int;
  expected : Word.t;
  got : Word.t;
}

exception Stop

type ram = {
  words : int;
  read : int -> Word.t;
  write : int -> Word.t -> unit;
  retention_wait : unit -> unit;
}

let ram_of_model model =
  { words = (Model.org model).Org.words
  ; read = Model.read_word model
  ; write = Model.write_word model
  ; retention_wait = (fun () -> Model.retention_wait model)
  }

let iter_addresses n order f =
  match order with
  | March.Up | March.Either ->
      for a = 0 to n - 1 do
        f a
      done
  | March.Down ->
      for a = n - 1 downto 0 do
        f a
      done

let run_general ram test ~backgrounds ~stop_at_first =
  let failures = ref [] in
  (try
     List.iter
       (fun bg ->
         (* hoisted out of the address loop: [lnot_] allocates, and the
            complemented background is needed on every ~r/~w op of every
            address — the engine's hottest allocation site *)
         let bg_compl = Word.lnot_ bg in
         List.iteri
           (fun item_idx item ->
             match item with
             | March.Wait -> ram.retention_wait ()
             | March.Elem { order; ops } ->
                 iter_addresses ram.words order (fun addr ->
                     List.iteri
                       (fun op_idx op ->
                         match op with
                         | March.W compl ->
                             let w = if compl then bg_compl else bg in
                             ram.write addr w
                         | March.R compl ->
                             let expected =
                               if compl then bg_compl else bg
                             in
                             let got = ram.read addr in
                             if not (Word.equal expected got) then begin
                               failures :=
                                 { background = bg
                                 ; item = item_idx
                                 ; op = op_idx
                                 ; addr
                                 ; expected
                                 ; got
                                 }
                                 :: !failures;
                               if stop_at_first then raise Stop
                             end)
                       ops))
           test.March.items)
       backgrounds
   with Stop -> ());
  List.rev !failures

let run_ram ram test ~backgrounds =
  run_general ram test ~backgrounds ~stop_at_first:false

let run model test ~backgrounds =
  Model.clear model;
  run_general (ram_of_model model) test ~backgrounds ~stop_at_first:false

let passes model test ~backgrounds =
  Model.clear model;
  run_general (ram_of_model model) test ~backgrounds ~stop_at_first:true = []

let failing_rows org failures =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun f ->
      let row = Org.row_of_addr org f.addr in
      if Hashtbl.mem seen row then None
      else begin
        Hashtbl.add seen row ();
        Some row
      end)
    failures

let op_count test org ~backgrounds =
  March.ops_per_address test * org.Org.words * backgrounds

let pp_failure ppf f =
  Format.fprintf ppf "bg=%a item=%d op=%d addr=%d expected=%a got=%a" Word.pp
    f.background f.item f.op f.addr Word.pp f.expected Word.pp f.got
