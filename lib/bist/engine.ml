module Model = Bisram_sram.Model
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word
module Obs = Bisram_obs.Obs

type failure = {
  background : Word.t;
  item : int;
  op : int;
  addr : int;
  expected : Word.t;
  got : Word.t;
}

exception Stop

type ram = {
  words : int;
  read : int -> Word.t;
  write : int -> Word.t -> unit;
  retention_wait : unit -> unit;
}

let ram_of_model model =
  { words = (Model.org model).Org.words
  ; read = Model.read_word model
  ; write = Model.write_word model
  ; retention_wait = (fun () -> Model.retention_wait model)
  }

let iter_addresses n order f =
  match order with
  | March.Up | March.Either ->
      for a = 0 to n - 1 do
        f a
      done
  | March.Down ->
      for a = n - 1 downto 0 do
        f a
      done

let run_general ram test ~backgrounds ~stop_at_first =
  let failures = ref [] in
  (try
     List.iteri
       (fun bg_idx bg ->
         (* hoisted out of the address loop: [lnot_] allocates, and the
            complemented background is needed on every ~r/~w op of every
            address — the engine's hottest allocation site *)
         let bg_compl = Word.lnot_ bg in
         List.iteri
           (fun item_idx item ->
             match item with
             | March.Wait ->
                 if Obs.enabled () then begin
                   Obs.incr "engine.waits";
                   Obs.span ~cat:"bist"
                     (Printf.sprintf "%s.bg%d.wait%d" test.March.name bg_idx
                        item_idx)
                     ram.retention_wait
                 end
                 else ram.retention_wait ()
             | March.Elem { order; ops } ->
                 (* per-element op table, resolved against the current
                    background once: the address loop walks a flat array
                    instead of re-running List.iteri closures, so it
                    allocates nothing per address *)
                 let n_ops = List.length ops in
                 let is_write = Array.make n_ops false in
                 let op_word = Array.make n_ops bg in
                 List.iteri
                   (fun i op ->
                     match op with
                     | March.W compl ->
                         is_write.(i) <- true;
                         if compl then op_word.(i) <- bg_compl
                     | March.R compl ->
                         if compl then op_word.(i) <- bg_compl)
                   ops;
                 let exec () =
                   iter_addresses ram.words order (fun addr ->
                       for op_idx = 0 to n_ops - 1 do
                         let w = Array.unsafe_get op_word op_idx in
                         if Array.unsafe_get is_write op_idx then
                           ram.write addr w
                         else begin
                           let got = ram.read addr in
                           (* packed words: an int compare *)
                           if not (Word.equal w got) then begin
                             failures :=
                               { background = bg
                               ; item = item_idx
                               ; op = op_idx
                               ; addr
                               ; expected = w
                               ; got
                               }
                               :: !failures;
                             if stop_at_first then raise Stop
                           end
                         end
                       done)
                 in
                 (* per-element telemetry: one enabled check per march
                    element keeps the per-op loop untouched when off *)
                 if Obs.enabled () then begin
                   Obs.incr "engine.elements";
                   Obs.add "engine.ops" (n_ops * ram.words);
                   Obs.span ~cat:"bist"
                     (Printf.sprintf "%s.bg%d.elem%d" test.March.name bg_idx
                        item_idx)
                     exec
                 end
                 else exec ())
           test.March.items)
       backgrounds
   with Stop -> ());
  List.rev !failures

let run_ram ram test ~backgrounds =
  run_general ram test ~backgrounds ~stop_at_first:false

let run model test ~backgrounds =
  Model.clear model;
  run_general (ram_of_model model) test ~backgrounds ~stop_at_first:false

let passes model test ~backgrounds =
  Model.clear model;
  run_general (ram_of_model model) test ~backgrounds ~stop_at_first:true = []

let failing_rows org failures =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun f ->
      let row = Org.row_of_addr org f.addr in
      if Hashtbl.mem seen row then None
      else begin
        Hashtbl.add seen row ();
        Some row
      end)
    failures

let op_count test org ~backgrounds =
  March.ops_per_address test * org.Org.words * backgrounds

let pp_failure ppf f =
  Format.fprintf ppf "bg=%a item=%d op=%d addr=%d expected=%a got=%a" Word.pp
    f.background f.item f.op f.addr Word.pp f.expected Word.pp f.got
