(** The microprogrammed test-and-repair controller.

    The FSM is compiled from a march test: per pass (test pass and
    verify pass) it chains one setup state per march element, one state
    per operation, one wait state per retention delay and a
    per-background loop state; global states handle idle, the TLB
    overflow check, pass-2 setup and the two terminal statuses.  The
    state graph is exported as TRPLA plane images, and the interpreter
    can execute either the symbolic graph or the PLA image — the test
    suite checks they agree cycle by cycle.

    Pass semantics follow the paper: in the first pass every failing
    row address is recorded in the TLB (mapped to the predetermined,
    strictly increasing spare sequence); in the second pass the remap
    is active, the array and the mapped spares are retested, and any
    mismatch raises "Repair Unsuccessful". *)

type hooks = {
  record_fault : row:int -> [ `Ok | `Full ];
      (** record a failing logical row; [`Full] = would overflow *)
  would_overflow : row:int -> bool;
      (** true when recording this (new) row would overflow the TLB *)
  enable_remap : unit -> unit;  (** install the TLB translation *)
  faults_recorded : unit -> int;
}

(** Hooks for a RAM with no repair logic at all (pure BIST): recording
    always overflows, so the first fault fails the run. *)
val no_repair_hooks : hooks

type outcome = Passed_clean | Repaired | Repair_unsuccessful

type t

(** Compile the controller for a march test over a given number of
    words and list of backgrounds. *)
val compile :
  March.t -> words:int -> backgrounds:Bisram_sram.Word.t list -> t

(** Like {!compile} but with only the background {e count}: the FSM
    layout, PLA image and reports never consult the background values.
    For wide-word organizations ([bpw > Word.max_width]) whose
    backgrounds cannot be represented as packed words — layout/area
    flows only.  {!run}/{!run_via_pla} raise [Invalid_argument] on the
    result. *)
val compile_layout : March.t -> words:int -> n_backgrounds:int -> t

val state_count : t -> int
val flipflop_count : t -> int

(** Names of the FSM states in id order (for reports). *)
val state_names : t -> string array

type report = {
  outcome : outcome;
  cycles : int;  (** controller clock cycles consumed *)
  faults_recorded : int;
}

(** Execute the two-pass self-test/self-repair against the RAM model. *)
val run : t -> Bisram_sram.Model.t -> hooks -> report

(** Export the control program as TRPLA planes. *)
val to_pla : t -> Trpla.t

(** Execute by evaluating the TRPLA image each cycle instead of the
    symbolic graph (slower; used to validate the PLA compilation). *)
val run_via_pla : t -> Bisram_sram.Model.t -> hooks -> report

val pp_outcome : Format.formatter -> outcome -> unit
