module Word = Bisram_sram.Word

(* Packed Johnson counter: bit i of [state] is stage i.  One step is
   two shifts and a mask — no per-stage work, no allocation. *)
type t = { bpw : int; mask : int; mutable state : int }

let create ~bpw =
  if bpw <= 0 then invalid_arg "Datagen.create: bpw must be positive";
  if bpw > Word.max_width then
    invalid_arg
      (Printf.sprintf "Datagen.create: bpw %d exceeds Word.max_width (%d)"
         bpw Word.max_width);
  { bpw; mask = (1 lsl bpw) - 1; state = 0 }

let bpw t = t.bpw
let reset t = t.state <- 0
let state t = Word.of_int ~width:t.bpw t.state

let step t =
  let msb = (t.state lsr (t.bpw - 1)) land 1 in
  t.state <- ((t.state lsl 1) lor (1 - msb)) land t.mask

let required_count ~bpw = (bpw / 2) + 1

let half_cycle_backgrounds ~bpw =
  let g = create ~bpw in
  let out = ref [ state g ] in
  for _ = 1 to bpw do
    step g;
    out := state g :: !out
  done;
  List.rev !out

let required_backgrounds ~bpw =
  let half = Array.of_list (half_cycle_backgrounds ~bpw) in
  let n = required_count ~bpw in
  (* every second state, pinned to start at all-0 and end at all-1 *)
  List.init n (fun i ->
      if i = n - 1 then half.(bpw) else half.(min (2 * i) bpw))

let matches ~expected ~got = Word.equal expected got
let ff_count t = t.bpw

let gate_count t =
  (* ~6 gates per Johnson stage + 3 per comparator XOR + OR tree *)
  (6 * t.bpw) + (3 * t.bpw) + t.bpw
