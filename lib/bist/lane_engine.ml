module Lanes = Bisram_sram.Lanes
module Org = Bisram_sram.Org
module Word = Bisram_sram.Word

exception Saturated

let iter_addresses n order f =
  match order with
  | March.Up | March.Either ->
      for a = 0 to n - 1 do
        f a
      done
  | March.Down ->
      for a = n - 1 downto 0 do
        f a
      done

(* One full march application over every lane at once, mirroring
   [Engine.run_general]'s op-table loop: per element the ops are
   resolved against the current background into flat arrays, and each
   read folds its per-lane comparator result into the fail mask.
   Once every lane has failed the pass stops early — the batched
   scheduler falls all of them back to the scalar engine anyway. *)
let run_pass ?(clear = true) lanes test ~backgrounds =
  if clear then Lanes.clear lanes;
  let words = (Lanes.org lanes).Org.words in
  let all = Lanes.all_mask lanes in
  let fail = ref 0 in
  (try
     List.iter
       (fun bg ->
         let bg_compl = Word.lnot_ bg in
         List.iter
           (fun item ->
             match item with
             | March.Wait -> Lanes.retention_wait lanes
             | March.Elem { order; ops } ->
                 let n_ops = List.length ops in
                 let is_write = Array.make n_ops false in
                 let op_exp =
                   Array.make n_ops (Lanes.expand lanes bg)
                 in
                 let exp_compl = lazy (Lanes.expand lanes bg_compl) in
                 List.iteri
                   (fun i op ->
                     match op with
                     | March.W compl ->
                         is_write.(i) <- true;
                         if compl then op_exp.(i) <- Lazy.force exp_compl
                     | March.R compl ->
                         if compl then op_exp.(i) <- Lazy.force exp_compl)
                   ops;
                 iter_addresses words order (fun addr ->
                     for op_idx = 0 to n_ops - 1 do
                       let e = Array.unsafe_get op_exp op_idx in
                       if Array.unsafe_get is_write op_idx then
                         Lanes.write_exp lanes addr e
                       else begin
                         fail := !fail lor Lanes.mismatch_exp lanes addr e;
                         if !fail = all then raise Saturated
                       end
                     done))
           test.March.items)
       backgrounds
   with Saturated -> ());
  !fail
