module Org = Bisram_sram.Org

type config = { words : int; bpw : int; spare_words : int; lambda : float }

let of_org org ~lambda =
  if not (Float.is_finite lambda && lambda > 0.0) then
    invalid_arg
      (Printf.sprintf
         "Reliability.of_org: lambda must be finite and > 0 (got %g)" lambda);
  { words = org.Org.words
  ; bpw = org.Org.bpw
  ; spare_words = Org.spare_words org
  ; lambda
  }

(* Lanczos log-gamma (local copy; tiny and keeps the library
   dependency-free). *)
let rec log_gamma x =
  if x < 0.5 then
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let g = 7.0 in
    let coefs =
      [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028
       ; 771.32342877765313; -176.61502916214059; 12.507343278686905
       ; -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7
      |]
    in
    let x = x -. 1.0 in
    let a = ref coefs.(0) in
    let t = x +. g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (coefs.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let log_choose n k =
  log_gamma (float_of_int n +. 1.0)
  -. log_gamma (float_of_int k +. 1.0)
  -. log_gamma (float_of_int (n - k) +. 1.0)

(* P(Binomial(w, q) <= s), summed in log space term by term. *)
let binomial_cdf ~w ~q s =
  if q <= 0.0 then 1.0
  else if q >= 1.0 then if s >= w then 1.0 else 0.0
  else begin
    let lq = log q and l1q = log (1.0 -. q) in
    let total = ref 0.0 in
    for j = 0 to min s w do
      let lt =
        log_choose w j
        +. (float_of_int j *. lq)
        +. (float_of_int (w - j) *. l1q)
      in
      total := !total +. exp lt
    done;
    min 1.0 !total
  end

let word_fault_prob c t =
  1.0 -. exp (-.c.lambda *. float_of_int c.bpw *. t)

let reliability c t =
  assert (t >= 0.0);
  if t = 0.0 then 1.0
  else begin
    let q = word_fault_prob c t in
    let spares_ok = (1.0 -. q) ** float_of_int c.spare_words in
    spares_ok *. binomial_cdf ~w:c.words ~q c.spare_words
  end

let failure_pdf c t =
  let h = max (t *. 1e-4) 1.0 in
  let tm = max 0.0 (t -. h) in
  -.(reliability c (t +. h) -. reliability c tm) /. (t +. h -. tm)

let mttf c =
  (* find the practical support of R, then composite Simpson *)
  let rec horizon t =
    if reliability c t < 1e-10 || t > 1e15 then t else horizon (t *. 2.0)
  in
  let tmax = horizon 1000.0 in
  let n = 20_000 in
  let h = tmax /. float_of_int n in
  let sum = ref (reliability c 0.0 +. reliability c tmax) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    sum := !sum +. (w *. reliability c (h *. float_of_int i))
  done;
  !sum *. h /. 3.0

let crossover a b ~t0 ~t1 ~steps =
  assert (steps > 1 && t1 > t0);
  let h = (t1 -. t0) /. float_of_int (steps - 1) in
  let rec go i =
    if i >= steps then None
    else begin
      let t = t0 +. (h *. float_of_int i) in
      if reliability a t < reliability b t then Some t else go (i + 1)
    end
  in
  go 0
