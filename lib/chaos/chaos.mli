(** Deterministic chaos injection for the tool's own execution seams.

    The fault-tolerance layer (supervised pool, campaign checkpoints,
    self-healing explore cache) is only trustworthy if its recovery
    paths are exercised, so this module lets CI inject faults — cache
    corruption, write failures, transient job exceptions, mid-campaign
    kills, clock skew — into the tool itself.

    Determinism contract: every injection decision is a pure hash of
    [(seed, site, key)] — no hidden RNG state, no dependence on call
    order, scheduling or job count.  A chaos run at [--jobs 4] injects
    exactly the faults a [--jobs 1] run injects, which is what lets the
    chaos CI gates assert that final reports stay {e byte-identical}
    under injected faults: every fault either heals (cache quarantine +
    re-evaluation, transient retry) or is recorded deterministically
    (tool_error outcomes).

    Chaos is disarmed by default and costs one [Atomic.get] per probe
    when off.  Production code never behaves differently unless a
    config is armed explicitly ({!configure}) or through the
    environment ({!arm_from_env}, called once by the CLI driver). *)

(** The exception injected into job seams (recognizable in diagnostics;
    carries the site it fired at). *)
exception Injected of string

type config = {
  seed : int;  (** perturbs every decision hash *)
  cache_read_corrupt : float;
      (** probability a cache entry read returns corrupted bytes *)
  cache_write_fail : float;
      (** probability a cache store raises a disk-full style error *)
  job_fail : float;
      (** probability a pool job attempt raises a transient fault *)
  kill_at_trial : int option;
      (** hard-exit the process (code 137, as after SIGKILL) when the
          campaign computes this trial index *)
  clock_skew_ns : int64;  (** constant skew added to the monotonic clock *)
}

(** All rates zero, no kill, no skew. *)
val off : config

(** Whether a config is armed. *)
val active : unit -> bool

val configure : config -> unit

(** Back to the disarmed default. *)
val disarm : unit -> unit

(** The armed config ({!off} when disarmed). *)
val current : unit -> config

(** Parse a config from an environment lookup function (pure, for
    tests): [BISRAM_CHAOS_SEED], [BISRAM_CHAOS_CACHE_READ],
    [BISRAM_CHAOS_CACHE_WRITE], [BISRAM_CHAOS_JOB],
    [BISRAM_CHAOS_KILL_TRIAL], [BISRAM_CHAOS_CLOCK_SKEW_NS].  [None]
    when no knob is set; unparseable values are ignored. *)
val config_of_env : (string -> string option) -> config option

(** [configure] from [Sys.getenv_opt]; leaves chaos disarmed when no
    knob is set.  Called once by the CLI driver at startup. *)
val arm_from_env : unit -> unit

(** [fires ~site ~key rate] — the deterministic injection decision for
    one probe point.  Always [false] when disarmed or [rate <= 0];
    always [true] at [rate >= 1]. *)
val fires : site:string -> key:string -> float -> bool

(** [corrupt ~key s] — [Some s'] with deterministically corrupted bytes
    (byte flip, truncation or emptying, chosen by the hash) when the
    cache-read probe fires for [key], [None] otherwise.  [s'] is never
    equal to [s] unless [s] defeats all three corruptions (it cannot:
    non-empty strings change, and empty strings never parse as cache
    entries anyway). *)
val corrupt : key:string -> string -> string option

(** The cache-write probe: when it fires the store should raise a
    [Sys_error] as if the disk were full. *)
val write_fails : key:string -> bool

(** The pool-job probe, keyed by item and attempt so a retry re-rolls
    the decision. *)
val job_fails : key:string -> bool

val kill_at_trial : unit -> int option

(** Exit the process abruptly with code 137 (the wait status of a
    SIGKILLed process), as a crash would. *)
val kill_now : unit -> 'a

val clock_skew_ns : unit -> int64
