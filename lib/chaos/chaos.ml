exception Injected of string

type config = {
  seed : int;
  cache_read_corrupt : float;
  cache_write_fail : float;
  job_fail : float;
  kill_at_trial : int option;
  clock_skew_ns : int64;
}

let off =
  { seed = 0
  ; cache_read_corrupt = 0.0
  ; cache_write_fail = 0.0
  ; job_fail = 0.0
  ; kill_at_trial = None
  ; clock_skew_ns = 0L
  }

(* Disarmed is the common case: every probe starts with one Atomic.get
   and returns immediately.  [None] rather than a config with zero
   rates, so "armed with all rates zero" still counts as active (the
   kill/skew knobs have no rate). *)
let state : config option Atomic.t = Atomic.make None

let active () = Atomic.get state <> None
let configure c = Atomic.set state (Some c)
let disarm () = Atomic.set state None
let current () = Option.value ~default:off (Atomic.get state)

(* ------------------------------------------------------------------ *)
(* environment knobs *)

let parse_with parse v = match parse v with x -> Some x | exception _ -> None

let config_of_env getenv =
  let get parse name =
    Option.bind (getenv name) (fun v -> parse_with parse v)
  in
  let any = ref false in
  let knob parse name default =
    match get parse name with
    | Some v ->
        any := true;
        v
    | None -> default
  in
  let c =
    { seed = knob int_of_string "BISRAM_CHAOS_SEED" off.seed
    ; cache_read_corrupt =
        knob float_of_string "BISRAM_CHAOS_CACHE_READ" off.cache_read_corrupt
    ; cache_write_fail =
        knob float_of_string "BISRAM_CHAOS_CACHE_WRITE" off.cache_write_fail
    ; job_fail = knob float_of_string "BISRAM_CHAOS_JOB" off.job_fail
    ; kill_at_trial =
        (match get int_of_string "BISRAM_CHAOS_KILL_TRIAL" with
        | Some _ as k ->
            any := true;
            k
        | None -> None)
    ; clock_skew_ns =
        knob Int64.of_string "BISRAM_CHAOS_CLOCK_SKEW_NS" off.clock_skew_ns
    }
  in
  if !any then Some c else None

let arm_from_env () =
  match config_of_env Sys.getenv_opt with
  | Some c -> configure c
  | None -> ()

(* ------------------------------------------------------------------ *)
(* decision hash *)

(* Avalanching mix over (seed, site, key): the decision for a probe
   point is a pure function of its identity, so it is independent of
   call order, scheduling and job count. *)
let mix x =
  let x = x land max_int in
  let x = x lxor (x lsr 33) in
  let x = x * 0x735A2D97 land max_int in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B873593 land max_int in
  x lxor (x lsr 32)

let hash ~seed ~site ~key =
  let h = ref (mix (seed lxor 0x9E3779B9)) in
  let feed s =
    String.iter (fun c -> h := mix ((!h * 31) + Char.code c)) s;
    h := mix (!h lxor String.length s)
  in
  feed site;
  feed key;
  !h

(* 24 uniform bits against the rate: plenty of resolution for CI-scale
   fault rates, and portable across word sizes *)
let fires ~site ~key rate =
  match Atomic.get state with
  | None -> false
  | Some c ->
      rate > 0.0
      && (rate >= 1.0
         ||
         let u =
           float_of_int (hash ~seed:c.seed ~site ~key land 0xFFFFFF)
           /. 16777216.0
         in
         u < rate)

(* ------------------------------------------------------------------ *)
(* seams *)

let corrupt ~key s =
  match Atomic.get state with
  | None -> None
  | Some c ->
      if not (fires ~site:"cache.read" ~key c.cache_read_corrupt) then None
      else
        let h = hash ~seed:c.seed ~site:"cache.read.shape" ~key in
        let n = String.length s in
        Some
          (if n = 0 then "{"
           else
             match h mod 3 with
             | 0 ->
                 (* flip one byte *)
                 let b = Bytes.of_string s in
                 let i = h / 3 mod n in
                 Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x55));
                 Bytes.to_string b
             | 1 -> String.sub s 0 (n / 2) (* truncation: a torn write *)
             | _ -> "" (* zero-length file: out of space mid-create *))

let write_fails ~key =
  fires ~site:"cache.write" ~key (current ()).cache_write_fail

let job_fails ~key = fires ~site:"pool.job" ~key (current ()).job_fail

let kill_at_trial () =
  match Atomic.get state with None -> None | Some c -> c.kill_at_trial

let kill_now () =
  (* exits 137 (the shell's code for a SIGKILLed child) mid-run: the
     report is never reached, so recovery has only the checkpoint *)
  Stdlib.exit 137

let clock_skew_ns () =
  match Atomic.get state with None -> 0L | Some c -> c.clock_skew_ns
