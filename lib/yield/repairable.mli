(** Yield of a built-in self-repairable RAM module (Fig. 4 machinery).

    A module is "good" under the paper's strict manufacturing notion iff
    no fault falls in the (non-redundant) BIST/BISR logic, no fault
    falls in any spare row, and the faulty cells in the regular array
    occupy at most [spares] distinct rows.

    Faults are cell faults: the x-axis mean defect count n-bar is the
    product D*A for the non-redundant array; for a BISR'ed module the
    mean is multiplied by the area growth factor. *)

type geometry = {
  regular_rows : int;
  spares : int;
  logic_fraction : float;
      (** fraction of the module area occupied by BIST/BISR logic *)
  growth_factor : float;
      (** module area / non-redundant array area; >= 1 *)
}

(** Geometry of a bare array (no spares, no logic, growth 1). *)
val bare : regular_rows:int -> geometry

(** Raises [Invalid_argument] on degenerate geometry: non-positive rows,
    negative spares, logic_fraction outside [0, 1) (including NaN), or a
    non-finite growth_factor below 1. *)
val make :
  regular_rows:int -> spares:int -> logic_fraction:float ->
  growth_factor:float -> geometry

(** [p_repairable g n] — probability that a pattern of exactly [n]
    uniformly placed cell faults is repairable (strict notion). *)
val p_repairable : geometry -> int -> float

(** [p_distinct_rows_at_most ~rows ~spares n] — probability that [n]
    balls thrown into [rows] bins occupy at most [spares] distinct bins
    (stable one-ball-at-a-time DP). *)
val p_distinct_rows_at_most : rows:int -> spares:int -> int -> float

(** [yield g ~mean_defects ~alpha] — module yield: the negative-binomial
    mixture of [p_repairable] over the fault count, with the mean
    already scaled by the growth factor internally.  Raises
    [Invalid_argument] if [mean_defects] is negative or either argument
    is non-finite or [alpha] is not positive. *)
val yield : geometry -> mean_defects:float -> alpha:float -> float

(** Same under the pure Poisson count model. *)
val yield_poisson : geometry -> mean_defects:float -> float

(** 2D geometry for spare-row + spare-column (BIRA) repair.  Unlike
    the row-only {!geometry} there is no closed form for the line-cover
    probability, so the [*2] functions below run a seeded internal
    Monte-Carlo with the exact branch-and-bound cover predicate — fully
    deterministic for fixed [samples]/[seed], which is what lets the
    campaign report embed the value byte-stably. *)
type geometry2 = {
  rows : int;  (** regular rows *)
  cols : int;  (** regular physical columns *)
  spare_rows : int;
  spare_cols : int;
}

(** Raises [Invalid_argument] on non-positive dimensions or negative
    spare budgets. *)
val make2 :
  rows:int -> cols:int -> spare_rows:int -> spare_cols:int -> geometry2

(** [p_repairable2 g n] — probability that [n] uniformly placed cell
    faults (over the full array including spare lines; a fault on a
    spare line burns it) are 2D-repairable.  Defaults: 2000 samples,
    seed 0x2D. *)
val p_repairable2 : ?samples:int -> ?seed:int -> geometry2 -> int -> float

(** 2D analogues of {!yield} / {!yield_poisson}.  The count mixture is
    truncated at 300 faults with the truncated tail counted as
    unrepairable (a tight lower bound).  Same [Invalid_argument]
    guards as the 1D versions (non-finite or negative means, NaN,
    non-positive alpha). *)
val yield2 :
  ?samples:int -> ?seed:int -> geometry2 -> mean_defects:float ->
  alpha:float -> float

val yield2_poisson :
  ?samples:int -> ?seed:int -> geometry2 -> mean_defects:float -> float

(** Monte-Carlo estimate of [yield] by direct simulation (used to
    validate the analytic path). *)
val yield_monte_carlo :
  Random.State.t -> geometry -> mean_defects:float -> alpha:float ->
  trials:int -> float
