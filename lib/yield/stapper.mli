(** Classical yield formulas (Section VII).

    The per-cell Poisson yield is Yc = exp(-lambda); Stapper's clustered
    yield for a die of area A and defect density D with clustering
    factor alpha is Y = (1 + D A / alpha)^(-alpha).  The mean defect
    count n = D A is the x-axis of the paper's Fig. 4.

    All functions raise [Invalid_argument] on degenerate inputs
    (non-finite values, negative means/densities/areas, alpha <= 0,
    yields outside (0, 1]) instead of returning NaN. *)

(** Poisson single-cell yield: exp(-lambda). *)
val poisson_cell_yield : lambda:float -> float

(** Stapper clustered yield from the mean defect count n = D*A. *)
val stapper_yield : mean_defects:float -> alpha:float -> float

(** Stapper yield from density and area (same formula). *)
val stapper_yield_da :
  defect_density:float -> area:float -> alpha:float -> float

(** Invert Stapper: mean defect count that produces a given yield. *)
val mean_defects_of_yield : yield:float -> alpha:float -> float

(** Yield of the same die in the Poisson (alpha -> infinity) limit. *)
val poisson_yield : mean_defects:float -> float
