module D = Bisram_faults.Defect

type geometry = {
  regular_rows : int;
  spares : int;
  logic_fraction : float;
  growth_factor : float;
}

let make ~regular_rows ~spares ~logic_fraction ~growth_factor =
  if regular_rows <= 0 then invalid_arg "Repairable.make: rows";
  if spares < 0 then invalid_arg "Repairable.make: spares";
  (* NaN compares false against every bound, so test for the valid range
     instead of the invalid one *)
  if not (logic_fraction >= 0.0 && logic_fraction < 1.0) then
    invalid_arg "Repairable.make: logic_fraction must be in [0, 1)";
  if not (Float.is_finite growth_factor && growth_factor >= 1.0) then
    invalid_arg "Repairable.make: growth_factor must be finite and >= 1";
  { regular_rows; spares; logic_fraction; growth_factor }

let bare ~regular_rows =
  make ~regular_rows ~spares:0 ~logic_fraction:0.0 ~growth_factor:1.0

let p_distinct_rows_at_most ~rows ~spares n =
  assert (rows > 0 && spares >= 0 && n >= 0);
  if spares >= rows then 1.0
  else begin
    (* p.(j) = P(j distinct bins so far); p.(spares+1) absorbs "too many" *)
    let p = Array.make (spares + 2) 0.0 in
    p.(0) <- 1.0;
    let rf = float_of_int rows in
    for _ = 1 to n do
      for j = spares + 1 downto 1 do
        let stay = p.(j) *. (float_of_int (min j (spares + 1)) /. rf) in
        let come = p.(j - 1) *. ((rf -. float_of_int (j - 1)) /. rf) in
        p.(j) <- (if j <= spares then stay else p.(j)) +. come
      done;
      p.(0) <- 0.0 (* after >=1 ball, zero distinct bins impossible *)
    done;
    let total = ref 0.0 in
    for j = 0 to spares do
      total := !total +. p.(j)
    done;
    !total
  end

let p_repairable g n =
  assert (n >= 0);
  if n = 0 then 1.0
  else begin
    let total_rows = g.regular_rows + g.spares in
    let f_reg =
      (1.0 -. g.logic_fraction)
      *. (float_of_int g.regular_rows /. float_of_int total_rows)
    in
    (* all n faults must land in the regular array... *)
    let all_regular = f_reg ** float_of_int n in
    (* ...and occupy at most [spares] distinct regular rows *)
    all_regular *. p_distinct_rows_at_most ~rows:g.regular_rows ~spares:g.spares n
  end

let mixture g ~mean ~pmf =
  if mean <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 and mass = ref 0.0 in
    let n = ref 0 in
    (* sum until the count distribution's tail is negligible *)
    while !mass < 1.0 -. 1e-12 && !n < 100_000 do
      let p = pmf !n in
      mass := !mass +. p;
      acc := !acc +. (p *. p_repairable g !n);
      incr n
    done;
    !acc
  end

let check_mean ctx mean_defects =
  if not (Float.is_finite mean_defects && mean_defects >= 0.0) then
    invalid_arg
      (Printf.sprintf "%s: mean_defects must be finite and >= 0 (got %g)" ctx
         mean_defects)

let check_alpha ctx alpha =
  if not (Float.is_finite alpha && alpha > 0.0) then
    invalid_arg
      (Printf.sprintf "%s: alpha must be finite and > 0 (got %g)" ctx alpha)

let yield g ~mean_defects ~alpha =
  check_mean "Repairable.yield" mean_defects;
  check_alpha "Repairable.yield" alpha;
  let mean = mean_defects *. g.growth_factor in
  mixture g ~mean ~pmf:(fun n -> D.negative_binomial_pmf ~mean ~alpha n)

let yield_poisson g ~mean_defects =
  check_mean "Repairable.yield_poisson" mean_defects;
  let mean = mean_defects *. g.growth_factor in
  mixture g ~mean ~pmf:(fun n -> D.poisson_pmf ~mean n)

(* ------------------------------------------------------------------ *)
(* 2D (row + column) repairability *)

type geometry2 = {
  rows : int;
  cols : int;
  spare_rows : int;
  spare_cols : int;
}

let make2 ~rows ~cols ~spare_rows ~spare_cols =
  if rows <= 0 then invalid_arg "Repairable.make2: rows";
  if cols <= 0 then invalid_arg "Repairable.make2: cols";
  if spare_rows < 0 then invalid_arg "Repairable.make2: spare_rows";
  if spare_cols < 0 then invalid_arg "Repairable.make2: spare_cols";
  { rows; cols; spare_rows; spare_cols }

(* Repairability of one explicit fault placement, by the same
   branch-and-bound cover the BIRA flow's optimal allocator uses.  A
   fault on a spare line burns that line (it cannot be deployed); a
   fault in the regular grid must be line-covered within the surviving
   budget.  A module with no regular-grid faults passes clean, so burnt
   spares alone never fail it. *)
let placement_repairable g cells =
  let reg = ref [] in
  let burnt_r = Hashtbl.create 4 and burnt_c = Hashtbl.create 4 in
  List.iter
    (fun (r, c) ->
      if r >= g.rows then Hashtbl.replace burnt_r r ();
      if c >= g.cols then Hashtbl.replace burnt_c c ();
      if r < g.rows && c < g.cols then reg := (r, c) :: !reg)
    cells;
  match !reg with
  | [] -> true
  | cells -> (
      let p =
        {
          Bisram_bira.Cover.rows = g.rows;
          cols = g.cols;
          spare_rows = max 0 (g.spare_rows - Hashtbl.length burnt_r);
          spare_cols = max 0 (g.spare_cols - Hashtbl.length burnt_c);
          cells;
        }
      in
      match Bisram_bira.Cover.Exhaustive.solve p with
      | Bisram_bira.Cover.Cover _ -> true
      | Bisram_bira.Cover.Uncoverable -> false)

(* No closed form exists for the 2D line-cover probability, so
   [p_repairable2] is a seeded internal Monte-Carlo over uniform cell
   placements — deterministic for given (samples, seed, n), which keeps
   campaign reports byte-stable. *)
let p_repairable2 ?(samples = 2000) ?(seed = 0x2D) g n =
  if samples <= 0 then invalid_arg "Repairable.p_repairable2: samples";
  if n < 0 then invalid_arg "Repairable.p_repairable2: n";
  if n = 0 then 1.0
  else begin
    let total_rows = g.rows + g.spare_rows
    and total_cols = g.cols + g.spare_cols in
    let rng = Random.State.make [| 0xB12A; seed; n |] in
    let good = ref 0 in
    for _ = 1 to samples do
      let cells =
        List.init n (fun _ ->
            (Random.State.int rng total_rows, Random.State.int rng total_cols))
      in
      if placement_repairable g cells then incr good
    done;
    float_of_int !good /. float_of_int samples
  end

(* Count mixture for the 2D model.  The tail is truncated at [n_max]
   faults; the truncated mass counts as unrepairable, so the result is
   a (tight) lower bound. *)
let mixture2 ?samples ?seed g ~mean ~pmf =
  if mean <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 and mass = ref 0.0 in
    let n = ref 0 in
    let n_max = 300 in
    while !mass < 1.0 -. 1e-9 && !n < n_max do
      let p = pmf !n in
      mass := !mass +. p;
      acc := !acc +. (p *. p_repairable2 ?samples ?seed g !n);
      incr n
    done;
    !acc
  end

let yield2 ?samples ?seed g ~mean_defects ~alpha =
  check_mean "Repairable.yield2" mean_defects;
  check_alpha "Repairable.yield2" alpha;
  mixture2 ?samples ?seed g ~mean:mean_defects ~pmf:(fun n ->
      D.negative_binomial_pmf ~mean:mean_defects ~alpha n)

let yield2_poisson ?samples ?seed g ~mean_defects =
  check_mean "Repairable.yield2_poisson" mean_defects;
  mixture2 ?samples ?seed g ~mean:mean_defects ~pmf:(fun n ->
      D.poisson_pmf ~mean:mean_defects n)

let yield_monte_carlo rng g ~mean_defects ~alpha ~trials =
  check_mean "Repairable.yield_monte_carlo" mean_defects;
  check_alpha "Repairable.yield_monte_carlo" alpha;
  if trials <= 0 then invalid_arg "Repairable.yield_monte_carlo: trials";
  let mean = mean_defects *. g.growth_factor in
  let total_rows = g.regular_rows + g.spares in
  let good = ref 0 in
  for _ = 1 to trials do
    let n = D.negative_binomial rng ~mean ~alpha in
    let rows_hit = Hashtbl.create 8 in
    let ok = ref true in
    for _ = 1 to n do
      if !ok then begin
        let u = Random.State.float rng 1.0 in
        if u < g.logic_fraction then ok := false
        else begin
          let row = Random.State.int rng total_rows in
          if row >= g.regular_rows then ok := false (* hit a spare *)
          else Hashtbl.replace rows_hit row ()
        end
      end
    done;
    if !ok && Hashtbl.length rows_hit <= g.spares then incr good
  done;
  float_of_int !good /. float_of_int trials
