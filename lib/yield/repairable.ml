module D = Bisram_faults.Defect

type geometry = {
  regular_rows : int;
  spares : int;
  logic_fraction : float;
  growth_factor : float;
}

let make ~regular_rows ~spares ~logic_fraction ~growth_factor =
  if regular_rows <= 0 then invalid_arg "Repairable.make: rows";
  if spares < 0 then invalid_arg "Repairable.make: spares";
  (* NaN compares false against every bound, so test for the valid range
     instead of the invalid one *)
  if not (logic_fraction >= 0.0 && logic_fraction < 1.0) then
    invalid_arg "Repairable.make: logic_fraction must be in [0, 1)";
  if not (Float.is_finite growth_factor && growth_factor >= 1.0) then
    invalid_arg "Repairable.make: growth_factor must be finite and >= 1";
  { regular_rows; spares; logic_fraction; growth_factor }

let bare ~regular_rows =
  make ~regular_rows ~spares:0 ~logic_fraction:0.0 ~growth_factor:1.0

let p_distinct_rows_at_most ~rows ~spares n =
  assert (rows > 0 && spares >= 0 && n >= 0);
  if spares >= rows then 1.0
  else begin
    (* p.(j) = P(j distinct bins so far); p.(spares+1) absorbs "too many" *)
    let p = Array.make (spares + 2) 0.0 in
    p.(0) <- 1.0;
    let rf = float_of_int rows in
    for _ = 1 to n do
      for j = spares + 1 downto 1 do
        let stay = p.(j) *. (float_of_int (min j (spares + 1)) /. rf) in
        let come = p.(j - 1) *. ((rf -. float_of_int (j - 1)) /. rf) in
        p.(j) <- (if j <= spares then stay else p.(j)) +. come
      done;
      p.(0) <- 0.0 (* after >=1 ball, zero distinct bins impossible *)
    done;
    let total = ref 0.0 in
    for j = 0 to spares do
      total := !total +. p.(j)
    done;
    !total
  end

let p_repairable g n =
  assert (n >= 0);
  if n = 0 then 1.0
  else begin
    let total_rows = g.regular_rows + g.spares in
    let f_reg =
      (1.0 -. g.logic_fraction)
      *. (float_of_int g.regular_rows /. float_of_int total_rows)
    in
    (* all n faults must land in the regular array... *)
    let all_regular = f_reg ** float_of_int n in
    (* ...and occupy at most [spares] distinct regular rows *)
    all_regular *. p_distinct_rows_at_most ~rows:g.regular_rows ~spares:g.spares n
  end

let mixture g ~mean ~pmf =
  if mean <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 and mass = ref 0.0 in
    let n = ref 0 in
    (* sum until the count distribution's tail is negligible *)
    while !mass < 1.0 -. 1e-12 && !n < 100_000 do
      let p = pmf !n in
      mass := !mass +. p;
      acc := !acc +. (p *. p_repairable g !n);
      incr n
    done;
    !acc
  end

let check_mean ctx mean_defects =
  if not (Float.is_finite mean_defects && mean_defects >= 0.0) then
    invalid_arg
      (Printf.sprintf "%s: mean_defects must be finite and >= 0 (got %g)" ctx
         mean_defects)

let check_alpha ctx alpha =
  if not (Float.is_finite alpha && alpha > 0.0) then
    invalid_arg
      (Printf.sprintf "%s: alpha must be finite and > 0 (got %g)" ctx alpha)

let yield g ~mean_defects ~alpha =
  check_mean "Repairable.yield" mean_defects;
  check_alpha "Repairable.yield" alpha;
  let mean = mean_defects *. g.growth_factor in
  mixture g ~mean ~pmf:(fun n -> D.negative_binomial_pmf ~mean ~alpha n)

let yield_poisson g ~mean_defects =
  check_mean "Repairable.yield_poisson" mean_defects;
  let mean = mean_defects *. g.growth_factor in
  mixture g ~mean ~pmf:(fun n -> D.poisson_pmf ~mean n)

let yield_monte_carlo rng g ~mean_defects ~alpha ~trials =
  check_mean "Repairable.yield_monte_carlo" mean_defects;
  check_alpha "Repairable.yield_monte_carlo" alpha;
  if trials <= 0 then invalid_arg "Repairable.yield_monte_carlo: trials";
  let mean = mean_defects *. g.growth_factor in
  let total_rows = g.regular_rows + g.spares in
  let good = ref 0 in
  for _ = 1 to trials do
    let n = D.negative_binomial rng ~mean ~alpha in
    let rows_hit = Hashtbl.create 8 in
    let ok = ref true in
    for _ = 1 to n do
      if !ok then begin
        let u = Random.State.float rng 1.0 in
        if u < g.logic_fraction then ok := false
        else begin
          let row = Random.State.int rng total_rows in
          if row >= g.regular_rows then ok := false (* hit a spare *)
          else Hashtbl.replace rows_hit row ()
        end
      end
    done;
    if !ok && Hashtbl.length rows_hit <= g.spares then incr good
  done;
  float_of_int !good /. float_of_int trials
