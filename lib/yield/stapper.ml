(* Degenerate inputs (negative means, alpha <= 0, NaN/infinity) would
   silently propagate NaN through every analysis layer stacked on these
   formulas — the sweep engine hammers them with user-supplied spec
   values, so they reject loudly instead. *)

let check_finite ctx name v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "%s: %s must be finite (got %g)" ctx name v)

let check_alpha ctx alpha =
  check_finite ctx "alpha" alpha;
  if alpha <= 0.0 then
    invalid_arg (Printf.sprintf "%s: alpha must be > 0 (got %g)" ctx alpha)

let check_nonneg ctx name v =
  check_finite ctx name v;
  if v < 0.0 then
    invalid_arg (Printf.sprintf "%s: %s must be >= 0 (got %g)" ctx name v)

let poisson_cell_yield ~lambda =
  check_nonneg "Stapper.poisson_cell_yield" "lambda" lambda;
  exp (-.lambda)

let stapper_yield ~mean_defects ~alpha =
  check_nonneg "Stapper.stapper_yield" "mean_defects" mean_defects;
  check_alpha "Stapper.stapper_yield" alpha;
  (1.0 +. (mean_defects /. alpha)) ** -.alpha

let stapper_yield_da ~defect_density ~area ~alpha =
  check_nonneg "Stapper.stapper_yield_da" "defect_density" defect_density;
  check_nonneg "Stapper.stapper_yield_da" "area" area;
  stapper_yield ~mean_defects:(defect_density *. area) ~alpha

let mean_defects_of_yield ~yield ~alpha =
  check_finite "Stapper.mean_defects_of_yield" "yield" yield;
  if yield <= 0.0 || yield > 1.0 then
    invalid_arg
      (Printf.sprintf
         "Stapper.mean_defects_of_yield: yield must be in (0, 1] (got %g)"
         yield);
  check_alpha "Stapper.mean_defects_of_yield" alpha;
  alpha *. ((yield ** (-1.0 /. alpha)) -. 1.0)

let poisson_yield ~mean_defects =
  check_nonneg "Stapper.poisson_yield" "mean_defects" mean_defects;
  exp (-.mean_defects)
