(** The MPR manufacturing-cost model (Section X):

    cost/chip = die cost + test & assembly cost + package & final test,
    with die cost = wafer cost / (dies per wafer x yield).

    BISR changes two factors: the die grows slightly (cache area x BISR
    overhead), lowering dies-per-wafer, while the embedded-RAM yield —
    and with it the whole-die yield — improves substantially.  Tables II
    and III of the paper are [table2_row]/[table3_row] over the chip
    database. *)

type bisr_params = {
  spares : int;
  cache_rows : int;  (** row count of the modeled embedded array *)
  area_overhead : float;  (** BIST/BISR + spares area / cache area *)
  alpha : float;  (** defect clustering factor *)
}

(** Four spare rows, 1024-row cache, the sub-7% overhead BISRAMGEN
    achieves, alpha = 2. *)
val default_bisr : bisr_params

(** Raises [Invalid_argument] on degenerate parameters: negative spares,
    non-positive cache_rows, non-finite or negative area_overhead,
    non-finite or non-positive alpha.  Called by every BISR cost path. *)
val validate_params : bisr_params -> unit

type die_costs = {
  die_area_mm2 : float;
  dies_per_wafer : int;
  die_yield : float;
  cost_per_good_die : float;
}

(** Die cost without BISR (straight from the database row). *)
val die_plain : Chips.t -> die_costs

(** Die cost with embedded-RAM BISR; [None] when the chip's process has
    fewer than three metal layers (the blank entries of Table II). *)
val die_bisr : Chips.t -> bisr_params -> die_costs option

(** Embedded-RAM yield extracted from the die yield:
    Y_ram = Y_die ^ cache_fraction (the paper's formula). *)
val ram_yield : Chips.t -> float

(** RAM yield after BISR, from the repairable-yield model. *)
val ram_yield_bisr : Chips.t -> bisr_params -> float

type totals = {
  die : float;
  test_assembly : float;
  package : float;
  total : float;
}

val totals_plain : Chips.t -> totals
val totals_bisr : Chips.t -> bisr_params -> totals option

type table2_row = {
  chip : Chips.t;
  without_bisr : die_costs;
  with_bisr : die_costs option;
}

type table3_row = {
  chip3 : Chips.t;
  plain : totals;
  bisr : totals option;
  reduction_pct : float option;
}

val table2 : ?params:bisr_params -> unit -> table2_row list
val table3 : ?params:bisr_params -> unit -> table3_row list
