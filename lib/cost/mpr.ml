module Stapper = Bisram_yield.Stapper
module Repairable = Bisram_yield.Repairable

type bisr_params = {
  spares : int;
  cache_rows : int;
  area_overhead : float;
  alpha : float;
}

let default_bisr =
  { spares = 4; cache_rows = 1024; area_overhead = 0.066; alpha = 2.0 }

(* every BISR cost path funnels through [cache_geometry], so params are
   validated once here; the range tests are written positively because
   NaN compares false against any bound *)
let validate_params p =
  if p.spares < 0 then invalid_arg "Mpr: spares must be >= 0";
  if p.cache_rows <= 0 then invalid_arg "Mpr: cache_rows must be > 0";
  if not (Float.is_finite p.area_overhead && p.area_overhead >= 0.0) then
    invalid_arg
      (Printf.sprintf "Mpr: area_overhead must be finite and >= 0 (got %g)"
         p.area_overhead);
  if not (Float.is_finite p.alpha && p.alpha > 0.0) then
    invalid_arg
      (Printf.sprintf "Mpr: alpha must be finite and > 0 (got %g)" p.alpha)

type die_costs = {
  die_area_mm2 : float;
  dies_per_wafer : int;
  die_yield : float;
  cost_per_good_die : float;
}

let mk_die_costs c ~area ~yield =
  let dpw = Wafer.dies_per_wafer ~wafer_mm:c.Chips.wafer_mm ~die_mm2:area in
  { die_area_mm2 = area
  ; dies_per_wafer = dpw
  ; die_yield = yield
  ; cost_per_good_die = c.Chips.wafer_cost /. (float_of_int dpw *. yield)
  }

let die_plain c = mk_die_costs c ~area:c.Chips.die_mm2 ~yield:c.Chips.die_yield

let ram_yield c = c.Chips.die_yield ** c.Chips.cache_fraction

let cache_geometry p =
  validate_params p;
  (* logic is roughly a third of the BISR overhead; the rest is spare
     rows and routing, all folded into the growth factor *)
  Repairable.make ~regular_rows:p.cache_rows ~spares:p.spares
    ~logic_fraction:(p.area_overhead /. 3.0)
    ~growth_factor:(1.0 +. p.area_overhead)

let ram_yield_bisr c p =
  let y_ram = ram_yield c in
  let mean = Stapper.mean_defects_of_yield ~yield:y_ram ~alpha:p.alpha in
  Repairable.yield (cache_geometry p) ~mean_defects:mean ~alpha:p.alpha

let die_bisr c p =
  if c.Chips.metal_layers < 3 then None
  else begin
    let y_ram = ram_yield c in
    let y_ram' = ram_yield_bisr c p in
    let yield' = c.Chips.die_yield /. y_ram *. y_ram' in
    let area' =
      c.Chips.die_mm2 *. (1.0 +. (c.Chips.cache_fraction *. p.area_overhead))
    in
    Some (mk_die_costs c ~area:area' ~yield:(min 1.0 yield'))
  end

type totals = {
  die : float;
  test_assembly : float;
  package : float;
  total : float;
}

let bad_chip_test_minutes = 5.0 /. 60.0

let mk_totals c (d : die_costs) =
  (* every die on the wafer is probed: good ones get the full test, bad
     ones a few seconds; amortize over the good ones *)
  let test_assembly =
    c.Chips.tester_rate
    *. (c.Chips.test_minutes
       +. ((1.0 -. d.die_yield) /. d.die_yield *. bad_chip_test_minutes))
  in
  let package = Chips.package_cost c in
  { die = d.cost_per_good_die
  ; test_assembly
  ; package
  ; total = d.cost_per_good_die +. test_assembly +. package
  }

let totals_plain c = mk_totals c (die_plain c)
let totals_bisr c p = Option.map (mk_totals c) (die_bisr c p)

type table2_row = {
  chip : Chips.t;
  without_bisr : die_costs;
  with_bisr : die_costs option;
}

type table3_row = {
  chip3 : Chips.t;
  plain : totals;
  bisr : totals option;
  reduction_pct : float option;
}

let table2 ?(params = default_bisr) () =
  List.map
    (fun chip ->
      { chip; without_bisr = die_plain chip; with_bisr = die_bisr chip params })
    Chips.all

let table3 ?(params = default_bisr) () =
  List.map
    (fun chip3 ->
      let plain = totals_plain chip3 in
      let bisr = totals_bisr chip3 params in
      let reduction_pct =
        Option.map
          (fun b -> 100.0 *. (plain.total -. b.total) /. plain.total)
          bisr
      in
      { chip3; plain; bisr; reduction_pct })
    Chips.all
