(** The two-pass built-in self-test / self-repair flow.

    Pass 1 tests the array and stores faulty row addresses in the TLB;
    pass 2 retests with the remap active — exercising the mapped spare
    rows — and any remaining mismatch means "Repair Unsuccessful"
    (too many faults, or faulty spares).  The 2k-pass extension iterates
    the cycle so faults within the spares themselves are repaired by
    allocating further spares. *)

type reason = Too_many_faulty_rows | Fault_in_second_pass

type outcome =
  | Passed_clean  (** no faults found *)
  | Repaired of int list  (** faulty logical rows, in detection order *)
  | Repair_unsuccessful of reason

(** Controller hooks backed by a TLB and a RAM model: recording goes to
    the TLB; enabling the remap installs the TLB translation into the
    model's addressing path. *)
val hooks_of_tlb :
  Tlb.t -> Bisram_sram.Model.t -> Bisram_bist.Controller.hooks

(** Run the microprogrammed controller end to end.  Creates the TLB
    from the model's organization, compiles the controller for the
    march test and backgrounds, and executes both passes.  Returns the
    outcome, the controller report and the TLB (left installed in the
    model on success, so normal-mode accesses are diverted). *)
val run :
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  outcome * Bisram_bist.Controller.report * Tlb.t

(** Reference flow via the functional march engine (same semantics,
    no microprogram).  Used as the oracle for the controller. *)
val run_reference :
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  outcome * Tlb.t

(** Iterated (2k-pass) flow: on a pass-2 failure caused by a faulty
    spare, the affected logical rows are remapped to subsequent spares
    and verification repeats, up to [max_rounds] times. *)
val run_iterated :
  ?max_rounds:int ->
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  outcome * Tlb.t

type iterated_result = {
  i_outcome : outcome;
  i_tlb : Tlb.t;
  i_rounds : int;
      (** verification marches executed: 1 for a first-try success,
          [max_rounds] at the give-up bound, 0 when the initial fault
          recording already overflowed the TLB *)
}

(** [run_iterated] plus the number of verification rounds consumed —
    the campaign harness histograms this as the repair-effort metric. *)
val run_iterated_result :
  ?max_rounds:int ->
  Bisram_sram.Model.t ->
  Bisram_bist.March.t ->
  backgrounds:Bisram_sram.Word.t list ->
  iterated_result

val pp_outcome : Format.formatter -> outcome -> unit
