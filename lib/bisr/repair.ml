module Model = Bisram_sram.Model
module Org = Bisram_sram.Org
module March = Bisram_bist.March
module Engine = Bisram_bist.Engine
module Controller = Bisram_bist.Controller

type reason = Too_many_faulty_rows | Fault_in_second_pass

type outcome =
  | Passed_clean
  | Repaired of int list
  | Repair_unsuccessful of reason

let hooks_of_tlb tlb model =
  { Controller.record_fault = (fun ~row -> Tlb.record tlb ~row)
  ; would_overflow = (fun ~row -> Tlb.would_overflow tlb ~row)
  ; enable_remap =
      (fun () -> Model.set_remap model (Some (fun row -> Tlb.remap tlb ~row)))
  ; faults_recorded = (fun () -> Tlb.entries tlb)
  }

let fresh_tlb model =
  let org = Model.org model in
  Tlb.create ~spares:org.Org.spares ~regular_rows:(Org.rows org)

let run model test ~backgrounds =
  let tlb = fresh_tlb model in
  Model.set_remap model None;
  let ctl =
    Controller.compile test ~words:(Model.org model).Org.words ~backgrounds
  in
  let hooks = hooks_of_tlb tlb model in
  let in_pass2 = ref false in
  let hooks =
    { hooks with
      Controller.enable_remap =
        (fun () ->
          in_pass2 := true;
          hooks.Controller.enable_remap ())
    }
  in
  let report = Controller.run ctl model hooks in
  let outcome =
    match report.Controller.outcome with
    | Controller.Passed_clean -> Passed_clean
    | Controller.Repaired -> Repaired (Tlb.mapped_rows tlb)
    | Controller.Repair_unsuccessful ->
        if !in_pass2 then Repair_unsuccessful Fault_in_second_pass
        else Repair_unsuccessful Too_many_faulty_rows
  in
  (outcome, report, tlb)

let run_reference model test ~backgrounds =
  let tlb = fresh_tlb model in
  Model.set_remap model None;
  let failures = Engine.run model test ~backgrounds in
  let rows = Engine.failing_rows (Model.org model) failures in
  let rec record = function
    | [] -> `Ok
    | row :: rest -> (
        match Tlb.record tlb ~row with `Ok -> record rest | `Full -> `Full)
  in
  match record rows with
  | `Full -> (Repair_unsuccessful Too_many_faulty_rows, tlb)
  | `Ok ->
      Model.set_remap model (Some (fun row -> Tlb.remap tlb ~row));
      if Engine.passes model test ~backgrounds then
        if rows = [] then (Passed_clean, tlb) else (Repaired rows, tlb)
      else (Repair_unsuccessful Fault_in_second_pass, tlb)

type iterated_result = { i_outcome : outcome; i_tlb : Tlb.t; i_rounds : int }

let run_iterated_result ?(max_rounds = 8) model test ~backgrounds =
  let tlb = fresh_tlb model in
  Model.set_remap model None;
  let failures = Engine.run model test ~backgrounds in
  let first_rows = Engine.failing_rows (Model.org model) failures in
  let record_new rows =
    List.fold_left
      (fun acc row ->
        match acc with
        | `Full -> `Full
        | `Ok -> (
            match Tlb.spare_of tlb ~row with
            | None -> Tlb.record tlb ~row
            | Some _ -> Tlb.remap_spare tlb ~row))
      `Ok rows
  in
  match record_new first_rows with
  | `Full ->
      { i_outcome = Repair_unsuccessful Too_many_faulty_rows
      ; i_tlb = tlb
      ; i_rounds = 0
      }
  | `Ok ->
      Model.set_remap model (Some (fun row -> Tlb.remap tlb ~row));
      let rec verify round =
        let failures = Engine.run model test ~backgrounds in
        if failures = [] then
          let i_outcome =
            if first_rows = [] then Passed_clean
            else Repaired (Tlb.mapped_rows tlb)
          in
          { i_outcome; i_tlb = tlb; i_rounds = round }
        else if round >= max_rounds then
          { i_outcome = Repair_unsuccessful Fault_in_second_pass
          ; i_tlb = tlb
          ; i_rounds = round
          }
        else
          let rows = Engine.failing_rows (Model.org model) failures in
          match record_new rows with
          | `Full ->
              { i_outcome = Repair_unsuccessful Too_many_faulty_rows
              ; i_tlb = tlb
              ; i_rounds = round
              }
          | `Ok -> verify (round + 1)
      in
      verify 1

let run_iterated ?max_rounds model test ~backgrounds =
  let r = run_iterated_result ?max_rounds model test ~backgrounds in
  (r.i_outcome, r.i_tlb)

let pp_outcome ppf = function
  | Passed_clean -> Format.pp_print_string ppf "passed clean"
  | Repaired rows ->
      Format.fprintf ppf "repaired rows [%s]"
        (String.concat "," (List.map string_of_int rows))
  | Repair_unsuccessful Too_many_faulty_rows ->
      Format.pp_print_string ppf "repair unsuccessful: too many faulty rows"
  | Repair_unsuccessful Fault_in_second_pass ->
      Format.pp_print_string ppf "repair unsuccessful: fault in second pass"
